package bench

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simds"
	"repro/internal/simtxn"
	"repro/internal/speculate"
	"repro/internal/telemetry"
)

// AblationComposedMoveSim (A8) is A7's experiment replayed on the modeled
// machine: concurrent cross-structure Moves between a simulated BST and a
// simulated hash table, completed three different ways.
//
//   - "Composed (modeled fast path)": each Move commits inside one modeled
//     prefix transaction spanning both structures (simtxn's fast path).
//   - "Composed (MultiCAS fallback)": the fast path is disabled, so every
//     Move runs the capture pass and publishes through the modeled N-word
//     MultiCAS — the same descriptor-and-helping protocol in simulated
//     memory, costed in cycles.
//   - "Two-spinlock locking": each structure guarded by a test-and-set spin
//     lock in simulated memory, a Move holding both in a fixed global order.
//
// Where A7 reports wall-clock numbers that vary run to run, A8 reports
// deterministic modeled cycles, so the fast-path-over-fallback gap — the
// paper's acceleration claim lifted to composition — is pinned by a test
// rather than eyeballed. Both composed arms drive the same speculation
// engine (speculate.Core through a simspec.Site) as every simds structure,
// and surface the same telemetry counters under the "simtxn/atomic" site.
func AblationComposedMoveSim(scale float64) Figure {
	w := scaled(windowSet, scale)
	f := Figure{
		ID:     "Ablation A8",
		Title:  "Composed cross-structure Move, modeled machine: fast path vs MultiCAS vs locking",
		YLabel: "ops/ms",
	}
	modes := []struct {
		name string
		mode composeMode
	}{
		{"Composed (modeled fast path)", composeFast},
		{"Composed (MultiCAS fallback)", composeFallback},
		{"Two-spinlock locking", composeLocked},
	}
	for _, m := range modes {
		s := Series{Name: m.name}
		for _, threads := range []int{2, 4, 8} {
			tput := measure(threads, w, buildComposedMoveSim(m.mode, 0))
			s.Points = append(s.Points, Point{Threads: threads, Throughput: tput})
		}
		f.Series = append(f.Series, s)
	}
	// Footprint sweep: modeled read/write-set caps on the composed fast path
	// (simtxn.WithCaps), the composition-layer analogue of A4's per-structure
	// capacity sweep. A tight cap turns every Move's fast-path attempt into a
	// deterministic capacity abort, sliding the arm onto the MultiCAS
	// fallback; a generous cap recovers the fast-path curve — so the sweep
	// pins where the composed footprint sits between the two.
	for _, caps := range []int{4, 16, 64} {
		s := Series{Name: fmt.Sprintf("Composed (caps %d words)", caps)}
		for _, threads := range []int{2, 4, 8} {
			tput := measure(threads, w, buildComposedMoveSim(composeFast, caps))
			s.Points = append(s.Points, Point{Threads: threads, Throughput: tput})
		}
		f.Series = append(f.Series, s)
	}
	// Matrix arm: the same experiment over the simulated skiplist pair (the
	// adapter the shared contract added on this substrate). Appended after
	// the historical series so their figures stay bit-for-bit.
	skip := Series{Name: "Composed skiplist pair (modeled fast path)"}
	for _, threads := range []int{2, 4, 8} {
		tput := measure(threads, w, buildComposedSkipMoveSim())
		skip.Points = append(skip.Points, Point{Threads: threads, Throughput: tput})
	}
	f.Series = append(f.Series, skip)
	// PQ arm: the modeled twin of A7's mound+list MoveMin/MoveToPQ series,
	// over the simulated skip-based priority queue and a skiplist set — the
	// last pair A7 covered that A8 did not. Appended after the historical
	// series so their figures stay bit-for-bit.
	pqArm := Series{Name: "Composed skipq+skiplist MoveMin/MoveToPQ (modeled fast path)"}
	for _, threads := range []int{2, 4, 8} {
		tput := measure(threads, w, buildComposedSkipQMoveSim())
		pqArm.Points = append(pqArm.Points, Point{Threads: threads, Throughput: tput})
	}
	f.Series = append(f.Series, pqArm)
	// Batched sweep: one composed operation moves k keys, amortizing one
	// modeled prefix transaction (or one N-word MultiCAS) across the batch;
	// throughput stays in key-move attempts per ms for comparability.
	for _, k := range []int{4, 16} {
		s := Series{Name: fmt.Sprintf("Composed batched MoveAll (k=%d)", k)}
		for _, threads := range []int{2, 4, 8} {
			tput := measure(threads, w, buildComposedMoveAllSim(k)) * float64(k)
			s.Points = append(s.Points, Point{Threads: threads, Throughput: tput})
		}
		f.Series = append(f.Series, s)
	}
	// NBTC arm: the MultiCAS fallback with publication deferred into one
	// commit-time hardware batch (simtxn.WithNBTC) — the Cai/Wen/Scott
	// commit mode as a fourth completion strategy next to fast/fallback/
	// locked. Appended after the historical series so their figures stay
	// bit-for-bit.
	nbtcArm := Series{Name: "Composed (NBTC fallback)"}
	for _, threads := range []int{2, 4, 8} {
		tput := measure(threads, w, buildComposedMoveSim(composeNBTC, 0))
		nbtcArm.Points = append(nbtcArm.Points, Point{Threads: threads, Throughput: tput})
	}
	f.Series = append(f.Series, nbtcArm)
	return f
}

// BatchedMoveAmortization moves keys 1..64 from a simulated BST to a hash
// table on a single-thread machine — batch ≤ 1 as independent Moves,
// otherwise as MoveAll calls over batch-sized slices — and returns the
// number of atomic publications (fast-path commits plus MultiCAS fallbacks)
// and keys moved. The machine is deterministic, so the counts reproduce
// bit-for-bit: they pin the batched-Move acceptance claim (fewer prefix
// transactions per moved key than k independent Moves) in both the test
// suite and the benchreport artifact.
func BatchedMoveAmortization(batch int) (publications uint64, moved int) {
	const keys = 64
	reg := telemetry.NewRegistry()
	m := sim.New(sim.DefaultConfig(1))
	setup := m.Thread(0)
	mgr := simtxn.New(0).WithPolicy(speculate.Fixed(0).WithMetrics(reg))
	b := simds.NewSimBST(setup, simds.BSTPTO12, false, 1)
	h := simds.NewSimHash(setup, simds.HashPTO, 16, 1)
	h.Stabilize(setup)
	for k := uint64(1); k <= keys; k++ {
		b.Insert(setup, k)
	}
	m.Run(func(th *sim.Thread) {
		if batch <= 1 {
			for k := uint64(1); k <= keys; k++ {
				if simtxn.Move(mgr, th, b, h, k) {
					moved++
				}
			}
			return
		}
		for lo := uint64(1); lo <= keys; lo += uint64(batch) {
			var ks []uint64
			for k := lo; k < lo+uint64(batch) && k <= keys; k++ {
				ks = append(ks, k)
			}
			moved += simtxn.MoveAll(mgr, th, b, h, ks...)
		}
	})
	s := reg.Site("simtxn/atomic/fast").Snapshot()
	return s.Commits + s.Fallbacks, moved
}

// buildComposedMoveSim prefills half the key range into the tree and runs
// random-direction Moves between tree and hash table. The composed arms keep
// the closed world the simtxn adapters require: while the machine runs, the
// two structures are mutated only through the composition layer. caps > 0
// bounds the fast path's modeled read- and write-set footprint in distinct
// words; 0 leaves it machine-limited.
func buildComposedMoveSim(mode composeMode, caps int) buildFunc {
	const keyRange = 256
	return func(m *sim.Machine, setup *sim.Thread) func(t *sim.Thread) {
		if mode == composeLocked {
			b := simds.NewSimBST(setup, simds.BSTLockfree, false, m.Config().Threads)
			h := simds.NewSimHash(setup, simds.HashLF, 64, m.Config().Threads)
			prefillSet(setup, keyRange, b.Insert)
			// One spin lock per structure, always acquired tree-first
			// regardless of Move direction, so the baseline is deadlock-free
			// without an ordering protocol.
			muB := setup.Alloc(1)
			muH := setup.Alloc(1)
			lock := func(t *sim.Thread, a sim.Addr) {
				for !t.CAS(a, 0, 1) {
					t.Work(16)
				}
			}
			return func(t *sim.Thread) {
				t.Work(opOverhead)
				x := t.Rand()
				k := x%keyRange + 1
				lock(t, muB)
				lock(t, muH)
				if x>>40&1 == 0 {
					if !h.Contains(t, k) && b.Remove(t, k) {
						h.Insert(t, k)
					}
				} else {
					if !b.Contains(t, k) && h.Remove(t, k) {
						b.Insert(t, k)
					}
				}
				t.Store(muH, 0)
				t.Store(muB, 0)
			}
		}
		mgr := newSimManager()
		if mode == composeFallback || mode == composeNBTC {
			mgr.ForceFallback(true)
		}
		if mode == composeNBTC {
			mgr.WithNBTC(true)
		}
		if caps > 0 {
			mgr.WithCaps(caps, caps)
		}
		b := simds.NewSimBST(setup, simds.BSTPTO12, false, m.Config().Threads).WithPolicy(simPolicy())
		h := simds.NewSimHash(setup, simds.HashPTO, 64, m.Config().Threads).WithPolicy(simPolicy())
		h.Stabilize(setup)
		prefillSet(setup, keyRange, b.Insert)
		return func(t *sim.Thread) {
			t.Work(opOverhead)
			x := t.Rand()
			k := x%keyRange + 1
			if x>>40&1 == 0 {
				simtxn.Move(mgr, t, b, h, k)
			} else {
				simtxn.Move(mgr, t, h, b, k)
			}
		}
	}
}

// buildComposedSkipMoveSim prefills half the key range into one simulated
// skiplist and runs random-direction Moves between the pair on the modeled
// fast path (closed world: the pair is mutated only through the layer).
func buildComposedSkipMoveSim() buildFunc {
	const keyRange = 256
	return func(m *sim.Machine, setup *sim.Thread) func(t *sim.Thread) {
		mgr := newSimManager()
		s1 := simds.NewSimSkip(setup, false, m.Config().Threads)
		s2 := simds.NewSimSkip(setup, false, m.Config().Threads)
		prefillSet(setup, keyRange, s1.Insert)
		return func(t *sim.Thread) {
			t.Work(opOverhead)
			x := t.Rand()
			k := x%keyRange + 1
			if x>>40&1 == 0 {
				simtxn.Move(mgr, t, s1, s2, k)
			} else {
				simtxn.Move(mgr, t, s2, s1, k)
			}
		}
	}
}

// buildComposedSkipQMoveSim prefills half the key range into a simulated
// skip-based priority queue and mixes MoveMin (drain the minimum into a
// skiplist set) with MoveToPQ (send a random set key back) on the modeled
// fast path. Closed world: both structures are mutated only through the
// composition layer while the machine runs.
func buildComposedSkipQMoveSim() buildFunc {
	const keyRange = 256
	return func(m *sim.Machine, setup *sim.Thread) func(t *sim.Thread) {
		mgr := newSimManager()
		pq := simds.NewSimSkipQ(setup, false, m.Config().Threads)
		set := simds.NewSimSkip(setup, false, m.Config().Threads)
		for i := 0; i < keyRange/2; i++ {
			pq.Push(setup, splitmixRand(uint64(i))%keyRange+1)
		}
		return func(t *sim.Thread) {
			t.Work(opOverhead)
			x := t.Rand()
			if x>>40&1 == 0 {
				simtxn.MoveMin(mgr, t, pq, set)
			} else {
				simtxn.MoveToPQ(mgr, t, set, pq, x%keyRange+1)
			}
		}
	}
}

// buildComposedMoveAllSim is buildComposedMoveSim's batched twin: each op is
// one MoveAll over k keys derived deterministically from the thread's random
// draw. The measure() figure counts composed ops; the caller scales by k to
// report key-move attempts.
func buildComposedMoveAllSim(k int) buildFunc {
	const keyRange = 256
	return func(m *sim.Machine, setup *sim.Thread) func(t *sim.Thread) {
		mgr := newSimManager()
		b := simds.NewSimBST(setup, simds.BSTPTO12, false, m.Config().Threads).WithPolicy(simPolicy())
		h := simds.NewSimHash(setup, simds.HashPTO, 64, m.Config().Threads).WithPolicy(simPolicy())
		h.Stabilize(setup)
		prefillSet(setup, keyRange, b.Insert)
		return func(t *sim.Thread) {
			t.Work(opOverhead)
			x := t.Rand()
			keys := make([]uint64, k)
			for i := range keys {
				keys[i] = (x+uint64(i)*0x9E3779B9)%keyRange + 1
			}
			if x>>40&1 == 0 {
				simtxn.MoveAll(mgr, t, b, h, keys...)
			} else {
				simtxn.MoveAll(mgr, t, h, b, keys...)
			}
		}
	}
}
