package txnops_test

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bst"
	"repro/internal/hashtable"
	"repro/internal/sim"
	"repro/internal/simds"
	"repro/internal/simtxn"
	"repro/internal/speculate"
	"repro/internal/telemetry"
	"repro/internal/txn"
)

// jsonKeys marshals v and returns its top-level JSON field names, sorted.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	m := map[string]json.RawMessage{}
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestGoldenTelemetryNames pins the telemetry surface the composition layer
// exports on both substrates: the site-class names the managers register
// ("txn/atomic" on the runtime, "simtxn/atomic" with level class "fast" on
// the modeled machine) and the JSON counter names of the per-site and
// composed snapshots. Dashboards and the benchreport artifact key on these
// strings, so renames must be deliberate — update this golden alongside
// every consumer, not as a side effect.
func TestGoldenTelemetryNames(t *testing.T) {
	// Runtime substrate: one Move through a metrics-backed manager must
	// surface the "txn/atomic" speculation site and the "txn/atomic"
	// composed counter block.
	reg := telemetry.NewRegistry()
	m := txn.New(0).WithPolicy(speculate.Fixed(0).WithMetrics(reg))
	src := bst.NewPTOIn(m.Domain(), -1, -1)
	dst := hashtable.NewPTOTableIn(m.Domain(), 16, 0)
	m.Atomic(func(c *txn.Ctx) { src.TxInsert(c, 1) })
	if !txn.Move(m, src, dst, 1) {
		t.Fatal("runtime Move failed")
	}
	m.ReadOnly(func(c *txn.Ctx) { dst.TxContains(c, 1) })
	snap := reg.Snapshot()
	siteNames := map[string]bool{}
	for _, s := range snap.Sites {
		siteNames[s.Name] = true
	}
	if !siteNames["txn/atomic"] {
		t.Errorf("runtime site classes %v missing %q", keysOf(siteNames), "txn/atomic")
	}
	composedNames := map[string]bool{}
	for _, c := range snap.Composed {
		composedNames[c.Name] = true
	}
	if !composedNames["txn/atomic"] {
		t.Errorf("runtime composed classes %v missing %q", keysOf(composedNames), "txn/atomic")
	}

	// Modeled substrate: the same traffic must surface the per-level site
	// class "simtxn/atomic/fast" (site × level, simspec's naming scheme).
	sreg := telemetry.NewRegistry()
	machine := sim.New(sim.DefaultConfig(1))
	setup := machine.Thread(0)
	mgr := simtxn.New(0).WithPolicy(speculate.Fixed(0).WithMetrics(sreg))
	sa := simds.NewSimBST(setup, simds.BSTPTO12, false, 1)
	sb := simds.NewSimHash(setup, simds.HashPTO, 16, 1)
	sb.Stabilize(setup)
	sa.Insert(setup, 1)
	moved := false
	machine.Run(func(th *sim.Thread) { moved = simtxn.Move(mgr, th, sa, sb, 1) })
	if !moved {
		t.Fatal("modeled Move failed")
	}
	ssnap := sreg.Snapshot()
	simNames := map[string]bool{}
	for _, s := range ssnap.Sites {
		simNames[s.Name] = true
	}
	if !simNames["simtxn/atomic/fast"] {
		t.Errorf("modeled site classes %v missing %q", keysOf(simNames), "simtxn/atomic/fast")
	}

	// Three-path managers (WithMiddle) register one site class per level on
	// both substrates — the fast tier moves from the bare site name to
	// name/fast, and the helping tier appears as name/middle. The A10
	// harness and the CI smoke grep key on these.
	treg := telemetry.NewRegistry()
	txn.New(0).WithPolicy(speculate.Fixed(0).WithMetrics(treg)).WithMiddle(0, 0)
	threeNames := map[string]bool{}
	for _, s := range treg.Snapshot().Sites {
		threeNames[s.Name] = true
	}
	for _, want := range []string{"txn/atomic/fast", "txn/atomic/middle"} {
		if !threeNames[want] {
			t.Errorf("three-path runtime site classes %v missing %q", keysOf(threeNames), want)
		}
	}
	streg := telemetry.NewRegistry()
	simtxn.New(0).WithPolicy(speculate.Fixed(0).WithMetrics(streg)).WithMiddle(0, 0)
	sthreeNames := map[string]bool{}
	for _, s := range streg.Snapshot().Sites {
		sthreeNames[s.Name] = true
	}
	for _, want := range []string{"simtxn/atomic/fast", "simtxn/atomic/middle"} {
		if !sthreeNames[want] {
			t.Errorf("three-path modeled site classes %v missing %q", keysOf(sthreeNames), want)
		}
	}

	// Counter names, shared by both substrates: the per-site attempt
	// partition and the composed-path counter block.
	wantSite := []string{
		"adaptive_disables", "attempts", "capacity", "commits", "conflicts",
		"explicit", "fallbacks", "false_conflicts", "helped_descs", "site",
		"skipped_ops", "spec_latency",
	}
	if got := jsonKeys(t, telemetry.SiteSnapshot{}); !reflect.DeepEqual(got, wantSite) {
		t.Errorf("site counter names drifted:\n got %v\nwant %v", got, wantSite)
	}
	wantComposed := []string{
		"fallback_commits", "fast_commits", "mcas_attempts", "mcas_failures",
		"mcas_width", "ops", "readonly_commits", "restarts", "site",
	}
	if got := jsonKeys(t, telemetry.ComposedSnapshot{}); !reflect.DeepEqual(got, wantComposed) {
		t.Errorf("composed counter names drifted:\n got %v\nwant %v", got, wantComposed)
	}
	wantOpen := []string{"ops_per_txn", "sem_retries", "site", "txns", "user_aborts"}
	if got := jsonKeys(t, telemetry.OpenSnapshot{}); !reflect.DeepEqual(got, wantOpen) {
		t.Errorf("open counter names drifted:\n got %v\nwant %v", got, wantOpen)
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
