package txnops_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hashtable"
	"repro/internal/mound"
	"repro/internal/msqueue"
	"repro/internal/skiplist"
	"repro/internal/txn"
)

// mustPanicContaining runs f and requires it to panic with a string message
// containing want.
func mustPanicContaining(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want message containing %q", r, want)
		}
	}()
	f()
}

// TestRegistryDuplicatePanics pins the registration contract: a second
// structure under an already-taken name is a driver bug and must panic, with
// the class and name in the message; the same name is free across classes
// (a set "x" and a queue "x" coexist — lookups are per class).
func TestRegistryDuplicatePanics(t *testing.T) {
	m := txn.New(0)
	reg := m.Structures()
	h := hashtable.NewPTOTableIn(m.Domain(), 4, 0)
	q := msqueue.NewPTOIn(m.Domain(), 0)
	p := mound.NewPTOIn(m.Domain(), 8, 0)
	reg.AddSet("x", h)
	reg.AddQueue("x", q) // cross-class reuse is allowed
	reg.AddPQ("x", p)

	mustPanicContaining(t, `duplicate set "x"`, func() {
		reg.AddSet("x", skiplist.NewPTOSetIn(m.Domain(), 0))
	})
	mustPanicContaining(t, `duplicate queue "x"`, func() {
		reg.AddQueue("x", msqueue.NewPTOIn(m.Domain(), 0))
	})
	mustPanicContaining(t, `duplicate pq "x"`, func() {
		reg.AddPQ("x", mound.NewPTOIn(m.Domain(), 8, 0))
	})

	if reg.Set("x") == nil || reg.Queue("x") == nil || reg.PQ("x") == nil {
		t.Fatal("registered structures lost after duplicate panics")
	}
}

// TestRegistryNamesSorted pins that the name enumerations are sorted
// regardless of registration order — /statz, the fuzz drivers, and the
// decision-parity tests all depend on a deterministic iteration order.
func TestRegistryNamesSorted(t *testing.T) {
	m := txn.New(0)
	reg := m.Structures()
	for _, n := range []string{"cold", "aux", "hot"} {
		reg.AddSet(n, hashtable.NewPTOTableIn(m.Domain(), 4, 0))
	}
	if got, want := reg.SetNames(), []string{"aux", "cold", "hot"}; !reflect.DeepEqual(got, want) {
		t.Errorf("SetNames = %v, want %v", got, want)
	}
	reg.AddQueue("zq", msqueue.NewPTOIn(m.Domain(), 0))
	reg.AddQueue("aq", msqueue.NewPTOIn(m.Domain(), 0))
	if got, want := reg.QueueNames(), []string{"aq", "zq"}; !reflect.DeepEqual(got, want) {
		t.Errorf("QueueNames = %v, want %v", got, want)
	}
	reg.AddPQ("zp", mound.NewPTOIn(m.Domain(), 8, 0))
	reg.AddPQ("ap", mound.NewPTOIn(m.Domain(), 8, 0))
	if got, want := reg.PQNames(), []string{"ap", "zp"}; !reflect.DeepEqual(got, want) {
		t.Errorf("PQNames = %v, want %v", got, want)
	}
}
