// Package txnops_test closes the structure×substrate matrix from the
// outside: compile-time conformance of every adapter against the shared
// contract, conservation fuzz of the generic composed algorithms over random
// structure pairs on both substrates, and a decision-parity spot check that
// the one shared algorithm makes the same decisions on the real runtime and
// the modeled machine when driven single-threaded from the same state.
package txnops_test

import (
	"testing"

	"repro/internal/bst"
	"repro/internal/hashtable"
	"repro/internal/list"
	"repro/internal/mound"
	"repro/internal/msqueue"
	"repro/internal/sim"
	"repro/internal/simds"
	"repro/internal/simtxn"
	"repro/internal/skiplist"
	"repro/internal/txn"
	"repro/internal/txnops"
)

// The matrix, checked at compile time: every adapter satisfies its
// substrate's capability alias of the shared txnops contract. A structure
// missing a method fails the build here, not in a driver at runtime.
var (
	_ txn.Set   = (*bst.PTOTree)(nil)
	_ txn.Set   = (*hashtable.PTOTable)(nil)
	_ txn.Set   = (*skiplist.PTOSet)(nil)
	_ txn.Set   = (*list.PTOSet)(nil)
	_ txn.Queue = (*msqueue.PTOQueue)(nil)
	_ txn.PQ    = (*mound.Mound)(nil)

	_ simtxn.Set   = (*simds.SimBST)(nil)
	_ simtxn.Set   = (*simds.SimHash)(nil)
	_ simtxn.Set   = (*simds.SimSkip)(nil)
	_ simtxn.Set   = (*simds.SimList)(nil)
	_ simtxn.Queue = (*simds.SimMSQueue)(nil)
	_ simtxn.PQ    = (*simds.SimSkipQ)(nil)

	// The optional read-only PQ extension, on both substrates.
	_ txnops.MinPQ[*txn.Ctx, int64]     = (*mound.Mound)(nil)
	_ txnops.MinPQ[*simtxn.Ctx, uint64] = (*simds.SimSkipQ)(nil)
)

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// TestConservationFuzzRuntime drives random Move/MoveAll/Transfer traffic
// over random pairs drawn from every runtime set adapter, all sharing one
// HTM domain, and verifies at quiescence that each key lives in exactly one
// set and each queue value in exactly one queue. The sets are enumerated
// through the manager's Registry — the fuzz has no per-structure code.
func TestConservationFuzzRuntime(t *testing.T) {
	const (
		keyRange = 48
		threads  = 6
		opsPer   = 300
	)
	m := txn.New(0)
	reg := m.Structures()
	reg.AddSet("bst", bst.NewPTOIn(m.Domain(), -1, -1))
	reg.AddSet("hashtable", hashtable.NewPTOTableIn(m.Domain(), 16, 0))
	reg.AddSet("list", list.NewPTOIn(m.Domain(), 0))
	reg.AddSet("skiplist", skiplist.NewPTOSetIn(m.Domain(), 0))
	names := reg.SetNames()
	sets := make([]txn.Set, len(names))
	for i, n := range names {
		sets[i] = reg.Set(n)
	}
	// Prefill round-robin: key k starts in set k mod len(sets).
	for k := int64(0); k < keyRange; k++ {
		s := sets[int(k)%len(sets)]
		m.Atomic(func(c *txn.Ctx) { s.TxInsert(c, k) })
	}
	q1, q2 := msqueue.NewPTOIn(m.Domain(), 0), msqueue.NewPTOIn(m.Domain(), 0)
	for v := int64(0); v < keyRange; v++ {
		m.Atomic(func(c *txn.Ctx) { q1.TxEnqueue(c, v) })
	}

	done := make(chan struct{})
	for g := 0; g < threads; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			rnd := uint64(g)*0x9E3779B9 + 7
			for i := 0; i < opsPer; i++ {
				rnd = splitmix(rnd)
				x := rnd
				src := sets[x%uint64(len(sets))]
				dst := sets[(x>>8)%uint64(len(sets))]
				k := int64(x >> 16 % keyRange)
				switch x >> 32 % 4 {
				case 0, 1:
					txn.Move(m, src, dst, k)
				case 2:
					ks := []int64{k, (k + 7) % keyRange, (k + 29) % keyRange}
					txn.MoveAll(m, src, dst, ks...)
				default:
					if x>>40&1 == 0 {
						txn.Transfer(m, q1, q2, 1+int(x>>48%3))
					} else {
						txn.Transfer(m, q2, q1, 1+int(x>>48%3))
					}
				}
			}
		}(g)
	}
	for g := 0; g < threads; g++ {
		<-done
	}

	for k := int64(0); k < keyRange; k++ {
		homes := 0
		m.ReadOnly(func(c *txn.Ctx) {
			homes = 0
			for _, s := range sets {
				if s.TxContains(c, k) {
					homes++
				}
			}
		})
		if homes != 1 {
			t.Errorf("key %d lives in %d sets, want 1", k, homes)
		}
	}
	seen := make([]int, keyRange)
	for _, q := range []*msqueue.PTOQueue{q1, q2} {
		for {
			var v int64
			var ok bool
			m.Atomic(func(c *txn.Ctx) { v, ok = q.TxDequeue(c) })
			if !ok {
				break
			}
			seen[v]++
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("queue value %d seen %d times, want 1", v, n)
		}
	}
}

// TestConservationFuzzSim is the same fuzz on the modeled substrate: random
// Move/MoveAll/Transfer over random pairs of every simulated set adapter,
// conservation verified from the structures' own key scans at quiescence.
// It runs once per hardware variant: the default RTM-like model, the
// BoundedSet model (whose tight exact-set budgets push far more traffic
// through the capacity-abort → fallback path), and BoundedSet with every
// publication forced through the NBTC commit-time batch — conservation
// must hold identically on all three.
func TestConservationFuzzSim(t *testing.T) {
	t.Run("default", func(t *testing.T) {
		conservationFuzzSim(t, sim.DefaultConfig(6), simtxn.New(0))
	})
	t.Run("bounded", func(t *testing.T) {
		cfg := sim.DefaultConfig(6)
		cfg.Model = sim.ModelBoundedSet
		conservationFuzzSim(t, cfg, simtxn.New(0))
	})
	t.Run("bounded+nbtc", func(t *testing.T) {
		cfg := sim.DefaultConfig(6)
		cfg.Model = sim.ModelBoundedSet
		mgr := simtxn.New(0).ForceFallback(true).WithNBTC(true)
		conservationFuzzSim(t, cfg, mgr)
		if mgr.NBTC().Batches == 0 {
			t.Error("NBTC arm committed no publication batches")
		}
	})
}

func conservationFuzzSim(t *testing.T, cfg sim.Config, mgr *simtxn.Manager) {
	const (
		keyRange = 48
		opsPer   = 150
	)
	threads := cfg.Threads
	machine := sim.New(cfg)
	setup := machine.Thread(0)
	reg := mgr.Structures()
	b := simds.NewSimBST(setup, simds.BSTPTO12, false, threads)
	h := simds.NewSimHash(setup, simds.HashPTO, 16, threads)
	h.Stabilize(setup)
	s := simds.NewSimSkip(setup, false, threads)
	li := simds.NewSimList(setup, false, threads)
	reg.AddSet("bst", b)
	reg.AddSet("hashtable", h)
	reg.AddSet("skiplist", s)
	reg.AddSet("list", li)
	names := reg.SetNames()
	sets := make([]simtxn.Set, len(names))
	for i, n := range names {
		sets[i] = reg.Set(n)
	}
	ins := []func(*sim.Thread, uint64) bool{b.Insert, h.Insert, s.Insert, li.Insert}
	order := []int{0, 0, 0, 0}
	for i, n := range names {
		switch n {
		case "bst":
			order[i] = 0
		case "hashtable":
			order[i] = 1
		case "skiplist":
			order[i] = 2
		case "list":
			order[i] = 3
		}
	}
	for k := uint64(1); k <= keyRange; k++ {
		ins[order[int(k)%len(sets)]](setup, k)
	}
	q1 := simds.NewSimMSQueue(setup, true)
	q2 := simds.NewSimMSQueue(setup, true)
	for v := uint64(1); v <= keyRange; v++ {
		q1.Enqueue(setup, v)
	}

	machine.Run(func(th *sim.Thread) {
		for i := 0; i < opsPer; i++ {
			x := th.Rand()
			src := sets[x%uint64(len(sets))]
			dst := sets[(x>>8)%uint64(len(sets))]
			k := x>>16%keyRange + 1
			switch x >> 32 % 4 {
			case 0, 1:
				simtxn.Move(mgr, th, src, dst, k)
			case 2:
				ks := []uint64{k, (k+7)%keyRange + 1, (k+29)%keyRange + 1}
				simtxn.MoveAll(mgr, th, src, dst, ks...)
			default:
				if x>>40&1 == 0 {
					simtxn.Transfer(mgr, th, q1, q2, 1+int(x>>48%3))
				} else {
					simtxn.Transfer(mgr, th, q2, q1, 1+int(x>>48%3))
				}
			}
		}
	})

	homes := make([]int, keyRange+1)
	for _, keys := range [][]uint64{b.Keys(setup), h.Keys(setup), s.Keys(setup), li.Keys(setup)} {
		for _, k := range keys {
			if k < 1 || k > keyRange {
				t.Fatalf("out-of-range key %d surfaced", k)
			}
			homes[k]++
		}
	}
	for k := 1; k <= keyRange; k++ {
		if homes[k] != 1 {
			t.Errorf("key %d lives in %d sets, want 1", k, homes[k])
		}
	}
	seen := make([]int, keyRange+1)
	for _, q := range []*simds.SimMSQueue{q1, q2} {
		for {
			v, ok := q.Dequeue(setup)
			if !ok {
				break
			}
			if v < 1 || v > keyRange {
				t.Fatalf("out-of-range queue value %d", v)
			}
			seen[v]++
		}
	}
	for v := 1; v <= keyRange; v++ {
		if seen[v] != 1 {
			t.Errorf("queue value %d seen %d times, want 1", v, seen[v])
		}
	}
}

// TestConservationFuzzSimPQ closes the PQ corner of the modeled matrix:
// random MoveMin/MoveToPQ traffic between the simulated skip-based priority
// queue and a skiplist set, with multiset conservation verified at
// quiescence — every initial value lives in exactly one of the two
// structures. (The set-only fuzz above cannot host PQ traffic: MoveMin
// drains an a-priori-unknown value, which would break its per-key
// one-home bookkeeping.)
func TestConservationFuzzSimPQ(t *testing.T) {
	const (
		valRange = 48
		threads  = 4
		opsPer   = 150
	)
	machine := sim.New(sim.DefaultConfig(threads))
	setup := machine.Thread(0)
	mgr := simtxn.New(0)
	pq := simds.NewSimSkipQ(setup, false, threads)
	set := simds.NewSimSkip(setup, false, threads)
	for v := uint64(1); v <= valRange; v++ {
		if v%2 == 0 {
			pq.Push(setup, v)
		} else {
			set.Insert(setup, v)
		}
	}

	machine.Run(func(th *sim.Thread) {
		for i := 0; i < opsPer; i++ {
			x := th.Rand()
			if x&1 == 0 {
				simtxn.MoveMin(mgr, th, pq, set)
			} else {
				simtxn.MoveToPQ(mgr, th, set, pq, x>>8%valRange+1)
			}
		}
	})

	homes := make([]int, valRange+1)
	for _, v := range set.Keys(setup) {
		if v < 1 || v > valRange {
			t.Fatalf("out-of-range set value %d surfaced", v)
		}
		homes[v]++
	}
	// Drain the queue through its own composed pop — the structure's raw
	// Pop cannot traverse the corpses composed pops leave linked.
	machine.Run(func(th *sim.Thread) {
		if th.ID() != 0 {
			return
		}
		for {
			var v uint64
			var ok bool
			mgr.Atomic(th, func(c *simtxn.Ctx) { v, ok = pq.TxPopMin(c) })
			if !ok {
				return
			}
			if v < 1 || v > valRange {
				t.Errorf("out-of-range popped value %d", v)
				return
			}
			homes[v]++
		}
	})
	for v := 1; v <= valRange; v++ {
		if homes[v] != 1 {
			t.Errorf("value %d lives in %d homes, want 1", v, homes[v])
		}
	}
}

// TestDecisionParityAcrossSubstrates drives the identical single-threaded
// operation sequence — same seed, same keys, same prefill — through the one
// shared composed algorithm on both substrates and requires the decision
// streams (Move success bits, MoveAll moved counts) to match exactly. The
// adapters differ in every mechanical detail, so agreement here pins that
// both implement the same abstract set semantics under the contract. The
// modeled side runs once per hardware variant — default RTM-like model,
// BoundedSet, and BoundedSet publishing through the forced NBTC batch —
// because the hardware model may move operations between the fast path and
// the fallback but must never change what an operation decides.
func TestDecisionParityAcrossSubstrates(t *testing.T) {
	const (
		keyRange = 32
		ops      = 400
	)
	// Runtime: BST ↔ skiplist pair.
	rm := txn.New(0)
	ra := bst.NewPTOIn(rm.Domain(), -1, -1)
	rb := skiplist.NewPTOSetIn(rm.Domain(), 0)
	for k := int64(2); k <= keyRange; k += 2 {
		rm.Atomic(func(c *txn.Ctx) { ra.TxInsert(c, k) })
	}
	var rt []int
	for i := 0; i < ops; i++ {
		x := splitmix(uint64(i))
		k := int64(x>>8%keyRange) + 1
		switch x % 3 {
		case 0:
			if txn.Move(rm, ra, rb, k) {
				rt = append(rt, 1)
			} else {
				rt = append(rt, 0)
			}
		case 1:
			if txn.Move(rm, rb, ra, k) {
				rt = append(rt, 1)
			} else {
				rt = append(rt, 0)
			}
		default:
			ks := []int64{k, (k % keyRange) + 1, ((k + 12) % keyRange) + 1}
			rt = append(rt, txn.MoveAll(rm, ra, rb, ks...))
		}
	}

	// Modeled: SimBST ↔ SimSkip pair on a one-thread machine, replayed once
	// per hardware variant against the one runtime stream.
	bounded := sim.DefaultConfig(1)
	bounded.Model = sim.ModelBoundedSet
	variants := []struct {
		name string
		cfg  sim.Config
		mgr  *simtxn.Manager
	}{
		{"default", sim.DefaultConfig(1), simtxn.New(0)},
		{"bounded", bounded, simtxn.New(0)},
		{"bounded+nbtc", bounded, simtxn.New(0).ForceFallback(true).WithNBTC(true)},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			sm := modeledDecisions(v.cfg, v.mgr, keyRange, ops)
			if len(rt) != len(sm) {
				t.Fatalf("decision stream lengths differ: %d vs %d", len(rt), len(sm))
			}
			for i := range rt {
				if rt[i] != sm[i] {
					t.Fatalf("decision %d diverged: runtime %d, modeled %d", i, rt[i], sm[i])
				}
			}
		})
	}
}

// modeledDecisions replays the parity sequence on one modeled machine and
// returns its decision stream.
func modeledDecisions(cfg sim.Config, mgr *simtxn.Manager, keyRange, ops uint64) []int {
	machine := sim.New(cfg)
	setup := machine.Thread(0)
	sa := simds.NewSimBST(setup, simds.BSTPTO12, false, 1)
	sb := simds.NewSimSkip(setup, false, 1)
	for k := uint64(2); k <= keyRange; k += 2 {
		sa.Insert(setup, k)
	}
	var sm []int
	machine.Run(func(th *sim.Thread) {
		for i := uint64(0); i < ops; i++ {
			x := splitmix(i)
			k := x>>8%keyRange + 1
			switch x % 3 {
			case 0:
				if simtxn.Move(mgr, th, sa, sb, k) {
					sm = append(sm, 1)
				} else {
					sm = append(sm, 0)
				}
			case 1:
				if simtxn.Move(mgr, th, sb, sa, k) {
					sm = append(sm, 1)
				} else {
					sm = append(sm, 0)
				}
			default:
				ks := []uint64{k, (k % keyRange) + 1, ((k + 12) % keyRange) + 1}
				sm = append(sm, simtxn.MoveAll(mgr, th, sa, sb, ks...))
			}
		}
	})
	return sm
}
