package txnops_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/hashtable"
	"repro/internal/mound"
	"repro/internal/msqueue"
	"repro/internal/semtx"
	"repro/internal/semtx/txtest"
	"repro/internal/sim"
	"repro/internal/simds"
	"repro/internal/simtxn"
	"repro/internal/skiplist"
	"repro/internal/txn"
	"repro/internal/txnops"
)

// Conservation fuzz over open-transaction (semtx) bodies, the open-API
// counterpart of the Move/Transfer fuzz above: the same deterministic corpus
// generator that drives the twin-replay tester (internal/semtx/txtest)
// drives concurrent multi-op bodies here, and quiescence checks value
// conservation instead of full linearizability — every value enqueued by a
// committed body is either dequeued by a committed body or still in the
// queue (as multisets), same for PQ pushes/pops, and every finally-present
// set key was put by at least one committed body. Aborted bodies (deliberate
// error returns) must contribute nothing.

var errSemFuzzAbort = errors.New("semfuzz: deliberate abort")

// semTally accumulates the committed effects: per-structure value multisets.
type semTally struct {
	mu   sync.Mutex
	puts []map[uint64]int // per set: key -> committed Put count
	enq  []map[uint64]int // per queue: value -> committed Enqueue count
	deq  []map[uint64]int // per queue: value -> committed successful Dequeue count
	push []map[uint64]int // per PQ: value -> committed Push count
	pop  []map[uint64]int // per PQ: value -> committed successful PopMin count
}

func newSemTally(sh txtest.Shape) *semTally {
	mk := func(n int) []map[uint64]int {
		out := make([]map[uint64]int, n)
		for i := range out {
			out[i] = make(map[uint64]int)
		}
		return out
	}
	return &semTally{puts: mk(sh.Sets), enq: mk(sh.Queues), deq: mk(sh.Queues),
		push: mk(sh.PQs), pop: mk(sh.PQs)}
}

// valRec is one recorded structural read result (Dequeue or PopMin) from the
// committed attempt of a body.
type valRec struct {
	st  int
	val uint64
	ok  bool
}

// commit folds one committed body into the tally: writes from its spec,
// structural reads from the committed attempt's records.
func (tl *semTally) commit(spec txtest.TxnSpec, deqs, pops []valRec) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	for _, op := range spec.Ops {
		switch op.Kind {
		case txtest.OpPut:
			tl.puts[op.Struct][op.Key]++
		case txtest.OpEnq:
			tl.enq[op.Struct][op.Key]++
		case txtest.OpPush:
			tl.push[op.Struct][op.Key]++
		}
	}
	for _, d := range deqs {
		if d.ok {
			tl.deq[d.st][d.val]++
		}
	}
	for _, p := range pops {
		if p.ok {
			tl.pop[p.st][p.val]++
		}
	}
}

// checkConserved requires added == removed + remaining as multisets.
func checkConserved(t *testing.T, label string, added, removed, remaining map[uint64]int) {
	t.Helper()
	keys := map[uint64]bool{}
	for k := range added {
		keys[k] = true
	}
	for k := range removed {
		keys[k] = true
	}
	for k := range remaining {
		keys[k] = true
	}
	for k := range keys {
		if added[k] != removed[k]+remaining[k] {
			t.Errorf("%s value %d not conserved: added %d, removed %d, remaining %d",
				label, k, added[k], removed[k], remaining[k])
		}
	}
}

// semBody builds the semtx body for spec, resetting the shared record slices
// on each attempt so only the committed attempt's structural reads survive.
func semBody[C txnops.Ctx, K interface{ ~int64 | ~uint64 }](
	spec txtest.TxnSpec, sets, queues, pqs []string,
	deqs, pops *[]valRec,
) func(tx *semtx.Tx[C, K]) error {
	return func(tx *semtx.Tx[C, K]) error {
		*deqs, *pops = (*deqs)[:0], (*pops)[:0]
		for _, op := range spec.Ops {
			switch op.Kind {
			case txtest.OpGet:
				tx.Get(sets[op.Struct], K(op.Key))
			case txtest.OpPut:
				tx.Put(sets[op.Struct], K(op.Key))
			case txtest.OpDel:
				tx.Delete(sets[op.Struct], K(op.Key))
			case txtest.OpEnq:
				tx.Enqueue(queues[op.Struct], K(op.Key))
			case txtest.OpDeq:
				v, ok := tx.Dequeue(queues[op.Struct])
				*deqs = append(*deqs, valRec{op.Struct, uint64(v), ok})
			case txtest.OpPush:
				tx.Push(pqs[op.Struct], K(op.Key))
			case txtest.OpPop:
				v, ok := tx.PopMin(pqs[op.Struct])
				*pops = append(*pops, valRec{op.Struct, uint64(v), ok})
			}
		}
		if spec.Abort {
			return errSemFuzzAbort
		}
		return nil
	}
}

// TestSemtxConservationFuzzRuntime drives the shared corpus through open
// transactions on the real-concurrency substrate — the twin-replay tester's
// five-structure world — and checks value conservation at quiescence.
func TestSemtxConservationFuzzRuntime(t *testing.T) {
	cfg := txtest.Config{Threads: 6, Txns: 1800, MaxOps: 8, Keys: 48,
		Seed: 0xC0FFEE, AbortPct: 5}
	sh := txtest.Shape{Sets: 2, Queues: 2, PQs: 1}

	m := txn.New(0)
	reg := m.Structures()
	h := hashtable.NewPTOTableIn(m.Domain(), 16, 0)
	sk := skiplist.NewPTOSetIn(m.Domain(), 0)
	q1 := msqueue.NewPTOIn(m.Domain(), 0)
	q2 := msqueue.NewPTOIn(m.Domain(), 0)
	pq := mound.NewPTOIn(m.Domain(), 12, 0)
	reg.AddSet("hot", h)
	reg.AddSet("cold", sk)
	reg.AddQueue("ingress", q1)
	reg.AddQueue("egress", q2)
	reg.AddPQ("sched", pq)
	sets := []string{"hot", "cold"}
	queues := []string{"ingress", "egress"}
	pqs := []string{"sched"}
	sm := semtx.New[*txn.Ctx, int64](m, reg)

	tl := newSemTally(sh)
	var wg sync.WaitGroup
	for g := 0; g < cfg.Threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var deqs, pops []valRec
			for i := g; i < cfg.Txns; i += cfg.Threads {
				spec := txtest.GenTxn(cfg, sh, i)
				_, err := sm.Run(semBody[*txn.Ctx, int64](spec, sets, queues, pqs, &deqs, &pops))
				if err != nil {
					if !errors.Is(err, errSemFuzzAbort) {
						t.Errorf("txn %d: %v", i, err)
					}
					continue
				}
				tl.commit(spec, deqs, pops)
			}
		}(g)
	}
	wg.Wait()

	drainQ := func(q *msqueue.PTOQueue) map[uint64]int {
		out := make(map[uint64]int)
		for {
			v, ok := q.Dequeue()
			if !ok {
				return out
			}
			out[uint64(v)]++
		}
	}
	checkConserved(t, "queue ingress", tl.enq[0], tl.deq[0], drainQ(q1))
	checkConserved(t, "queue egress", tl.enq[1], tl.deq[1], drainQ(q2))
	remPQ := make(map[uint64]int)
	for {
		v, ok := pq.RemoveMin()
		if !ok {
			break
		}
		remPQ[uint64(v)]++
	}
	checkConserved(t, "pq sched", tl.push[0], tl.pop[0], remPQ)
	for k := uint64(1); k <= uint64(cfg.Keys); k++ {
		if h.Contains(int64(k)) && tl.puts[0][k] == 0 {
			t.Errorf("set hot key %d present but never put by a committed body", k)
		}
		if sk.Contains(int64(k)) && tl.puts[1][k] == 0 {
			t.Errorf("set cold key %d present but never put by a committed body", k)
		}
	}
}

// TestSemtxConservationFuzzSim is the same conservation fuzz on the modeled
// substrate (the tester's sim world: four set adapters, one MS queue, no
// PQ), same corpus generator, bodies running on machine threads through
// per-thread Execs against one shared semtx manager.
func TestSemtxConservationFuzzSim(t *testing.T) {
	cfg := txtest.Config{Threads: 4, Txns: 1200, MaxOps: 8, Keys: 48,
		Seed: 0xC0FFEE, AbortPct: 5}
	sh := txtest.Shape{Sets: 4, Queues: 1, PQs: 0}

	machine := sim.New(sim.DefaultConfig(cfg.Threads))
	setup := machine.Thread(0)
	mgr := simtxn.New(0)
	reg := mgr.Structures()
	b := simds.NewSimBST(setup, simds.BSTPTO12, false, cfg.Threads)
	h := simds.NewSimHash(setup, simds.HashPTO, 16, cfg.Threads)
	h.Stabilize(setup)
	sk := simds.NewSimSkip(setup, false, cfg.Threads)
	li := simds.NewSimList(setup, false, cfg.Threads)
	reg.AddSet("bst", b)
	reg.AddSet("hashtable", h)
	reg.AddSet("skiplist", sk)
	reg.AddSet("list", li)
	q := simds.NewSimMSQueue(setup, true)
	reg.AddQueue("ingress", q)
	sets := []string{"bst", "hashtable", "skiplist", "list"}
	queues := []string{"ingress"}
	sm := semtx.New[*simtxn.Ctx, uint64](mgr.On(setup), reg)

	tl := newSemTally(sh)
	machine.Run(func(th *sim.Thread) {
		x := mgr.On(th)
		var deqs, pops []valRec
		for i := th.ID(); i < cfg.Txns; i += cfg.Threads {
			spec := txtest.GenTxn(cfg, sh, i)
			_, err := sm.RunOn(x, semBody[*simtxn.Ctx, uint64](spec, sets, queues, nil, &deqs, &pops))
			if err != nil {
				if !errors.Is(err, errSemFuzzAbort) {
					t.Errorf("txn %d: %v", i, err)
				}
				continue
			}
			tl.commit(spec, deqs, pops)
		}
	})

	rem := make(map[uint64]int)
	for {
		v, ok := q.Dequeue(setup)
		if !ok {
			break
		}
		rem[v]++
	}
	checkConserved(t, "queue ingress", tl.enq[0], tl.deq[0], rem)
	members := make([]map[uint64]bool, sh.Sets)
	for i, keys := range [][]uint64{b.Keys(setup), h.Keys(setup), sk.Keys(setup), li.Keys(setup)} {
		members[i] = make(map[uint64]bool, len(keys))
		for _, k := range keys {
			members[i][k] = true
		}
	}
	for si, name := range sets {
		for k := uint64(1); k <= uint64(cfg.Keys); k++ {
			if members[si][k] && tl.puts[si][k] == 0 {
				t.Errorf("set %s key %d present but never put by a committed body", name, k)
			}
		}
	}
}
