// Package txnops is the shared adapter contract of the two transactional
// composition layers. internal/txn (real runtime, htm-backed) and
// internal/simtxn (discrete-event machine) each run composed bodies against
// a substrate-specific Ctx; what a *structure* must provide to participate —
// and what a composed *algorithm* may assume of a structure — is identical
// on both substrates. This package states that contract once:
//
//   - Ctx is the substrate-neutral face of an attempt context: the three
//     methods every composed algorithm needs (Retry, Speculative, OnCommit).
//     The substrate Ctx types add their own typed memory accessors (txn's
//     generic Read/Peek/Write over htm.Var, simtxn's word accessors); those
//     are adapter business, not algorithm business, so they stay out of the
//     contract.
//
//   - Set, Queue, and PQ are the capability interfaces. A structure plugs
//     into a substrate by implementing one of them against that substrate's
//     Ctx; the composed algorithms below are written once, generically, over
//     any (Ctx, key) instantiation. internal/txn instantiates them at
//     (*txn.Ctx, int64), internal/simtxn at (*simtxn.Ctx, uint64).
//
//   - Exec abstracts "run this body atomically with retry". txn.Manager
//     satisfies it directly; simtxn.Manager binds a simulated thread first
//     (Manager.On). Every algorithm takes an Exec, so the same Move source
//     serves both substrates — the bit-for-bit regression bar for the
//     deterministic figures.
//
//   - Registry is the registration surface: drivers (stress, bench, fuzz)
//     register each structure once per substrate under a name and then
//     enumerate pairs generically, instead of each driver growing its own
//     per-structure plumbing.
//
// The algorithms keep the §2.4 discipline by construction: they only call
// adapter methods and Ctx.Retry, so they never help under speculation and
// never observe a torn pair of structures.
package txnops

// Ctx is the substrate-neutral attempt context. Both *txn.Ctx and
// *simtxn.Ctx implement it.
type Ctx interface {
	// Retry abandons the current attempt and re-runs the body. It does not
	// return.
	Retry()
	// Speculative reports whether the body is running inside a fast-path
	// transaction (where helping is forbidden — §2.4).
	Speculative() bool
	// OnCommit registers f to run once, after the composed operation
	// commits on any path.
	OnCommit(f func())
}

// Set is the composable set capability: membership plus insert/remove, all
// linearized with the enclosing composed operation.
type Set[C Ctx, K any] interface {
	TxContains(c C, key K) bool
	TxInsert(c C, key K) bool
	TxRemove(c C, key K) bool
}

// Queue is the composable FIFO capability.
type Queue[C Ctx, V any] interface {
	TxEnqueue(c C, v V)
	TxDequeue(c C) (V, bool)
}

// PQ is the composable priority-queue capability (mound, skip-based PQs).
// TxPush always succeeds (duplicates allowed); TxPopMin reports false on an
// empty queue.
type PQ[C Ctx, V any] interface {
	TxPush(c C, v V)
	TxPopMin(c C) (V, bool)
}

// FrontQueue is the optional read-only extension of Queue: TxFront reads
// the value at the head without removing it, reporting false when the queue
// is empty. Open transactions (internal/semtx) need it to record a
// head-value semantic item without consuming the element; adapters that
// want to participate in open transactions implement it alongside Queue.
type FrontQueue[C Ctx, V any] interface {
	TxFront(c C) (V, bool)
}

// MinPQ is the optional read-only extension of PQ: TxMin reads the current
// minimum without removing it, reporting false on an empty queue. Open
// transactions use it to record a min-value semantic item.
type MinPQ[C Ctx, V any] interface {
	TxMin(c C) (V, bool)
}

// Exec runs composed bodies atomically. txn.Manager implements it; a
// simtxn.Manager bound to a thread (Manager.On) implements it for the
// simulated machine.
type Exec[C Ctx] interface {
	Atomic(body func(c C))
}

// Move atomically moves key from src to dst, reporting whether it did. The
// move happens only when key is present in src and absent from dst, so a
// successful Move conserves the total key count across the two sets — the
// invariant the composition tests check under concurrency.
func Move[C Ctx, K any](x Exec[C], src, dst Set[C, K], key K) bool {
	var moved bool
	x.Atomic(func(c C) {
		moved = false
		if dst.TxContains(c, key) {
			return
		}
		if !src.TxRemove(c, key) {
			return
		}
		if !dst.TxInsert(c, key) {
			// The insert's view disagrees with the TxContains probe above
			// (a concurrent insert slipped between the two capture-mode
			// traversals); the commit would not validate, so restart now.
			c.Retry()
		}
		moved = true
	})
	return moved
}

// MoveAll atomically moves every key in keys from src to dst inside ONE
// composed operation — one prefix transaction on the fast path, one N-word
// MultiCAS in the fallback — amortizing the per-transaction cost across the
// batch. Keys already in dst or absent from src are skipped (the rest of the
// batch still moves); the returned count is how many moved. A nil or empty
// batch is a no-op.
func MoveAll[C Ctx, K any](x Exec[C], src, dst Set[C, K], keys ...K) int {
	if len(keys) == 0 {
		return 0
	}
	var moved int
	x.Atomic(func(c C) {
		moved = 0
		for _, key := range keys {
			if dst.TxContains(c, key) {
				continue
			}
			if !src.TxRemove(c, key) {
				continue
			}
			if !dst.TxInsert(c, key) {
				c.Retry()
			}
			moved++
		}
	})
	return moved
}

// Transfer atomically dequeues up to n values from src and enqueues them on
// dst, returning how many moved. The transfer is all-or-nothing: no
// concurrent observer sees a value absent from both queues.
func Transfer[C Ctx, V any](x Exec[C], src, dst Queue[C, V], n int) int {
	var moved int
	x.Atomic(func(c C) {
		moved = 0
		for i := 0; i < n; i++ {
			v, ok := src.TxDequeue(c)
			if !ok {
				break
			}
			dst.TxEnqueue(c, v)
			moved++
		}
	})
	return moved
}

// MoveMin atomically pops src's minimum and inserts it into dst, reporting
// the value and whether a cross-structure move happened. When dst already
// holds the value, the pop is undone by pushing the value back into src in
// the same atomic step — the pair's contents are conserved either way.
func MoveMin[C Ctx, V any](x Exec[C], src PQ[C, V], dst Set[C, V]) (V, bool) {
	var v V
	var moved bool
	x.Atomic(func(c C) {
		moved = false
		var ok bool
		v, ok = src.TxPopMin(c)
		if !ok {
			return
		}
		if dst.TxInsert(c, v) {
			moved = true
			return
		}
		src.TxPush(c, v)
	})
	return v, moved
}

// MoveToPQ atomically removes key from src and pushes it onto dst, reporting
// whether it did. The push cannot fail (PQs admit duplicates), so the move
// conserves the pair's contents.
func MoveToPQ[C Ctx, V any](x Exec[C], src Set[C, V], dst PQ[C, V], key V) bool {
	var moved bool
	x.Atomic(func(c C) {
		moved = false
		if !src.TxRemove(c, key) {
			return
		}
		dst.TxPush(c, key)
		moved = true
	})
	return moved
}
