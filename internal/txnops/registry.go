package txnops

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the registration surface of one composition layer: every
// structure participating in composed operations is registered once, under a
// name, with its capability. Drivers (the stress harness, the conservation
// fuzzers, benchmark arms) then enumerate structures generically — "every
// registered set pair", "a PQ and a set" — instead of hard-wiring one code
// path per structure. Registration is not required for correctness (the
// algorithms take interfaces directly); it exists so that adding a structure
// to a substrate is one AddSet call, not a diff across every driver.
//
// Registration happens at build time, before the structures are shared;
// lookups during a run are read-only and safe for concurrent use.
type Registry[C Ctx, K comparable] struct {
	mu     sync.RWMutex
	sets   map[string]Set[C, K]
	queues map[string]Queue[C, K]
	pqs    map[string]PQ[C, K]
}

// AddSet registers s under name, panicking on a duplicate (two structures
// under one name is a driver bug, not a recoverable condition).
func (r *Registry[C, K]) AddSet(name string, s Set[C, K]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sets == nil {
		r.sets = make(map[string]Set[C, K])
	}
	if _, dup := r.sets[name]; dup {
		panic(fmt.Sprintf("txnops: duplicate set %q", name))
	}
	r.sets[name] = s
}

// AddQueue registers q under name, panicking on a duplicate.
func (r *Registry[C, K]) AddQueue(name string, q Queue[C, K]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.queues == nil {
		r.queues = make(map[string]Queue[C, K])
	}
	if _, dup := r.queues[name]; dup {
		panic(fmt.Sprintf("txnops: duplicate queue %q", name))
	}
	r.queues[name] = q
}

// AddPQ registers p under name, panicking on a duplicate.
func (r *Registry[C, K]) AddPQ(name string, p PQ[C, K]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pqs == nil {
		r.pqs = make(map[string]PQ[C, K])
	}
	if _, dup := r.pqs[name]; dup {
		panic(fmt.Sprintf("txnops: duplicate pq %q", name))
	}
	r.pqs[name] = p
}

// Set returns the set registered under name, or nil.
func (r *Registry[C, K]) Set(name string) Set[C, K] {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sets[name]
}

// Queue returns the queue registered under name, or nil.
func (r *Registry[C, K]) Queue(name string) Queue[C, K] {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.queues[name]
}

// PQ returns the priority queue registered under name, or nil.
func (r *Registry[C, K]) PQ(name string) PQ[C, K] {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pqs[name]
}

// SetNames returns the registered set names, sorted.
func (r *Registry[C, K]) SetNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.sets)
}

// QueueNames returns the registered queue names, sorted.
func (r *Registry[C, K]) QueueNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.queues)
}

// PQNames returns the registered priority-queue names, sorted.
func (r *Registry[C, K]) PQNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.pqs)
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
