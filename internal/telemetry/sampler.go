package telemetry

import (
	"log"
	"sync"
	"time"
)

// Sampler is a background goroutine that turns the registry's cumulative
// counters into an interval-rate time series: every interval it takes a
// Snapshot, Deltas it against the previous one, and logs one line per active
// site with the interval's commit ratio, abort rate, and fallback rate.
// This is the long-stress-run companion of ptostress -hold: cumulative
// counters hide phase changes (a site that degrades after ten minutes still
// shows a healthy lifetime ratio), while interval deltas surface them.
type Sampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartSampler begins sampling r every interval, writing lines through logf
// (nil selects log.Printf). Idle sites — no attempts, composed ops, or
// fallbacks in the interval — are elided. Stop the sampler with Stop; Stop
// flushes one final partial-interval delta before returning, so a run that
// ends (or a server that drains on SIGTERM) between ticks still reports its
// last interval instead of dropping it.
func StartSampler(r *Registry, interval time.Duration, logf func(format string, args ...any)) *Sampler {
	if logf == nil {
		logf = log.Printf
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	// The baseline is taken before returning, so activity between
	// StartSampler and the goroutine's first run lands in the first
	// interval instead of silently joining the baseline. The three snapshot
	// buffers rotate for the sampler's lifetime — SnapshotInto/DeltaInto
	// reuse their slices, so the hot loop is allocation-free at steady
	// state even on a controller-grade cadence (see TestSamplerHotLoopAllocs).
	var prev, cur, delta Snapshot
	r.SnapshotInto(&prev)
	prevAt := time.Now()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				// Final flush: whatever accumulated since the last tick.
				r.SnapshotInto(&cur)
				cur.DeltaInto(&prev, &delta)
				logDelta(delta, time.Since(prevAt), logf)
				return
			case now := <-t.C:
				r.SnapshotInto(&cur)
				cur.DeltaInto(&prev, &delta)
				logDelta(delta, now.Sub(prevAt), logf)
				prev, cur = cur, prev
				prevAt = now
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for its goroutine to exit. Safe to call
// more than once.
func (s *Sampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// logDelta writes one line per active site of an interval delta.
func logDelta(d Snapshot, elapsed time.Duration, logf func(format string, args ...any)) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	for _, s := range d.Sites {
		aborts := s.Conflicts + s.Capacity + s.Explicit
		if s.Attempts == 0 && s.Fallbacks == 0 {
			continue
		}
		logf("site %-24s attempts/s %8.0f commit-ratio %5.3f aborts/s %8.0f (conflict %d false %d capacity %d explicit %d) fallbacks/s %7.0f",
			s.Name, float64(s.Attempts)/secs, s.CommitRatio(), float64(aborts)/secs,
			s.Conflicts, s.FalseConflicts, s.Capacity, s.Explicit, float64(s.Fallbacks)/secs)
	}
	for _, c := range d.Composed {
		if c.Ops == 0 {
			continue
		}
		meanWidth := 0.0
		if c.Width.Count > 0 {
			meanWidth = float64(c.Width.Sum) / float64(c.Width.Count)
		}
		logf("composed %-20s ops/s %8.0f fast-ratio %5.3f fallback/s %7.0f mcas-fail/s %6.0f restarts/s %6.0f mean-width %.1f",
			c.Name, float64(c.Ops)/secs, c.FastRatio(), float64(c.FallbackCommits)/secs,
			float64(c.MCASFailures)/secs, float64(c.Restarts)/secs, meanWidth)
	}
}
