package telemetry

import (
	"fmt"
	"reflect"
	"testing"
)

func populatedRegistry() *Registry {
	r := NewRegistry()
	for i := 0; i < 6; i++ {
		s := r.Site(fmt.Sprintf("site%d", i))
		s.Attempts.Add(uint64(10 * (i + 1)))
		s.Commits.Add(uint64(8 * (i + 1)))
		s.Conflicts.Add(uint64(i))
		s.SpecNanos.Observe(uint64(100 * (i + 1)))
	}
	c := r.Composed("comp")
	c.Ops.Add(40)
	c.FastCommits.Add(30)
	c.Width.Observe(3)
	o := r.Open("open")
	o.Txns.Add(7)
	o.OpsPerTxn.Observe(2)
	return r
}

// TestSnapshotIntoMatchesSnapshot: the buffered path produces the same
// values as the allocating one, including after more activity and a
// late-registered site.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	r := populatedRegistry()
	var buf Snapshot
	r.SnapshotInto(&buf)
	if !reflect.DeepEqual(buf, r.Snapshot()) {
		t.Fatal("SnapshotInto differs from Snapshot")
	}
	r.Site("site0").Commits.Add(5)
	r.Site("late") // registration mid-stream
	r.SnapshotInto(&buf)
	if !reflect.DeepEqual(buf, r.Snapshot()) {
		t.Fatal("SnapshotInto differs from Snapshot after growth")
	}
}

// TestDeltaIntoMatchesDelta covers both the aligned fast path (same
// registry, prev-first) and the prefix case where sites registered between
// the two snapshots.
func TestDeltaIntoMatchesDelta(t *testing.T) {
	r := populatedRegistry()
	var prev, cur, delta Snapshot
	r.SnapshotInto(&prev)
	r.Site("site2").Attempts.Add(100)
	r.Site("site2").Commits.Add(90)
	r.Composed("comp").Ops.Add(11)
	r.Open("open").Txns.Add(3)
	newcomer := r.Site("newcomer")
	newcomer.Attempts.Add(4)
	r.SnapshotInto(&cur)
	cur.DeltaInto(&prev, &delta)
	want := cur.Delta(prev)
	if !reflect.DeepEqual(delta, want) {
		t.Fatal("DeltaInto differs from Delta on the aligned path")
	}
	if d := delta.Sites[2]; d.Attempts != 100 || d.Commits != 90 {
		t.Fatalf("site2 delta = %+v", d)
	}
	last := delta.Sites[len(delta.Sites)-1]
	if last.Name != "newcomer" || last.Attempts != 4 {
		t.Fatalf("newcomer delta = %+v", last)
	}
	// Misaligned snapshots (different registries) fall back to by-name.
	other := populatedRegistry()
	var op Snapshot
	other.SnapshotInto(&op)
	op.Sites[0], op.Sites[1] = op.Sites[1], op.Sites[0] // break alignment
	cur.DeltaInto(&op, &delta)
	if !reflect.DeepEqual(delta, cur.Delta(op)) {
		t.Fatal("DeltaInto differs from Delta on the fallback path")
	}
}

// TestSamplerHotLoopAllocs pins the satellite fix: one sampler/controller
// tick — SnapshotInto + DeltaInto over warmed buffers — allocates nothing,
// so a 10ms controller cadence adds zero GC pressure to the workload it is
// steering.
func TestSamplerHotLoopAllocs(t *testing.T) {
	r := populatedRegistry()
	var prev, cur, delta Snapshot
	r.SnapshotInto(&prev)
	allocs := testing.AllocsPerRun(200, func() {
		r.SnapshotInto(&cur)
		cur.DeltaInto(&prev, &delta)
		prev, cur = cur, prev
	})
	if allocs != 0 {
		t.Fatalf("snapshot+delta tick allocates %.1f objects, want 0", allocs)
	}
}
