package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWidthHistogramBuckets(t *testing.T) {
	var h WidthHistogram
	h.Observe(1)
	h.Observe(2)
	h.Observe(16)
	h.Observe(17)
	h.Observe(100) // overflow bucket
	h.Observe(0)   // clamped to 1
	s := h.Snapshot()
	if s.Buckets[0] != 2 { // widths 1 and clamped 0
		t.Fatalf("bucket[0] = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 1 || s.Buckets[15] != 1 {
		t.Fatalf("exact buckets wrong: %+v", s.Buckets)
	}
	if s.Buckets[NumWidthBuckets-1] != 2 { // 17 and 100
		t.Fatalf("overflow bucket = %d, want 2", s.Buckets[NumWidthBuckets-1])
	}
	if s.Count != 6 || s.Sum != 1+2+16+17+100+1 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
}

func TestComposedSnapshotDeltaAndRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Composed("txn/move")
	if r.Composed("txn/move") != c {
		t.Fatal("same name must return the same composed site")
	}
	c.Ops.Add(10)
	c.FastCommits.Add(7)
	c.FallbackCommits.Add(3)
	c.MCASAttempts.Add(4)
	c.MCASFailures.Add(1)
	c.Width.Observe(5)
	prev := r.Snapshot()
	c.Ops.Add(5)
	c.FastCommits.Add(5)
	d := r.Snapshot().Delta(prev)
	if len(d.Composed) != 1 {
		t.Fatalf("composed sites in delta = %d, want 1", len(d.Composed))
	}
	cd := d.Composed[0]
	if cd.Ops != 5 || cd.FastCommits != 5 || cd.FallbackCommits != 0 {
		t.Fatalf("delta = %+v", cd)
	}
	full := r.Snapshot().Composed[0]
	if full.FastRatio() != 12.0/15.0 {
		t.Fatalf("fast ratio = %g", full.FastRatio())
	}
}

func TestPrometheusIncludesComposed(t *testing.T) {
	r := NewRegistry()
	c := r.Composed("txn/transfer")
	c.Ops.Add(3)
	c.FallbackCommits.Add(3)
	c.Width.Observe(4)
	c.Width.Observe(9)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`pto_composed_ops_total{site="txn/transfer"} 3`,
		`pto_composed_commits_total{site="txn/transfer",path="fallback"} 3`,
		`pto_composed_mcas_width_bucket{site="txn/transfer",le="4"} 1`,
		`pto_composed_mcas_width_bucket{site="txn/transfer",le="+Inf"} 2`,
		`pto_composed_mcas_width_sum{site="txn/transfer"} 13`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSamplerLogsActiveSitesOnly(t *testing.T) {
	r := NewRegistry()
	active := r.Site("bst/insert")
	r.Site("idle/site") // never touched
	comp := r.Composed("txn/move")

	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, strings.TrimSpace(fmt.Sprintf(format, args...)))
	}
	s := StartSampler(r, 10*time.Millisecond, logf)
	// Keep generating activity across several intervals so deltas are
	// non-zero regardless of when the sampler takes its baseline snapshot.
	for i := 0; i < 8; i++ {
		active.Attempts.Add(100)
		active.Commits.Add(90)
		comp.Ops.Add(10)
		comp.FastCommits.Add(10)
		time.Sleep(15 * time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	var sawActive, sawComposed bool
	for _, l := range lines {
		if strings.Contains(l, "idle/site") {
			t.Fatalf("sampler logged idle site: %q", l)
		}
		if strings.Contains(l, "bst/insert") {
			sawActive = true
		}
		if strings.Contains(l, "txn/move") {
			sawComposed = true
		}
	}
	if !sawActive || !sawComposed {
		t.Fatalf("sampler missed active sites (site=%v composed=%v): %v",
			sawActive, sawComposed, lines)
	}
}
