package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {255, 0}, // below the floor
		{256, 1}, {511, 1},
		{512, 2}, {1023, 2},
		{1024, 3},
		{255 << 10, 10}, // 261120ns is still within bucket 10's [2^17, 2^18)
		{1 << 30, NumBuckets - 1},
		{^uint64(0), NumBuckets - 1}, // saturates in the last bucket
	}
	for _, c := range cases {
		if got := bucketFor(c.ns); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's contents must be below its upper bound and at or above
	// the previous bound.
	var h Histogram
	for i := 0; i < NumBuckets-1; i++ {
		ub := BucketUpperBound(i)
		h.Observe(ub - 1)
		h.Observe(ub) // first value of the next bucket
	}
	s := h.Snapshot()
	if s.Buckets[0] != 1 {
		t.Errorf("bucket 0 = %d, want 1", s.Buckets[0])
	}
	for i := 1; i < NumBuckets-1; i++ {
		if s.Buckets[i] != 2 {
			t.Errorf("bucket %d = %d, want 2 (boundary straddle)", i, s.Buckets[i])
		}
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Errorf("last bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
	if s.Count != 2*(NumBuckets-1) {
		t.Errorf("count = %d, want %d", s.Count, 2*(NumBuckets-1))
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	a := r.Site("a")
	a.Attempts.Add(10)
	a.Commits.Add(7)
	a.Conflicts.Add(2)
	a.Capacity.Add(1)
	a.Fallbacks.Add(3)
	a.SpecNanos.Observe(100)

	s1 := r.Snapshot()
	if len(s1.Sites) != 1 || s1.Sites[0].Name != "a" {
		t.Fatalf("snapshot shape: %+v", s1)
	}
	if got := s1.Sites[0]; got.Attempts != 10 || got.Commits != 7 ||
		got.Conflicts != 2 || got.Capacity != 1 || got.Fallbacks != 3 {
		t.Fatalf("snapshot values: %+v", got)
	}
	if r := s1.Sites[0].CommitRatio(); r != 0.7 {
		t.Fatalf("commit ratio = %v, want 0.7", r)
	}

	// More traffic, plus a site that appears mid-interval.
	a.Attempts.Add(5)
	a.Commits.Add(5)
	a.SpecNanos.Observe(300)
	b := r.Site("b")
	b.Attempts.Add(1)
	b.Explicit.Add(1)
	b.Disables.Add(1)
	b.Skipped.Add(4)

	s2 := r.Snapshot()
	d := s2.Delta(s1)
	if len(d.Sites) != 2 {
		t.Fatalf("delta shape: %+v", d)
	}
	da := d.Sites[0]
	if da.Attempts != 5 || da.Commits != 5 || da.Conflicts != 0 || da.Fallbacks != 0 {
		t.Fatalf("delta a: %+v", da)
	}
	if da.SpecNanos.Count != 1 || da.SpecNanos.SumNs != 300 {
		t.Fatalf("delta a histogram: %+v", da.SpecNanos)
	}
	db := d.Sites[1]
	if db.Attempts != 1 || db.Explicit != 1 || db.Disables != 1 || db.Skipped != 4 {
		t.Fatalf("delta b (new site passes through): %+v", db)
	}
	if db.CommitRatio() != 0 {
		t.Fatalf("b commit ratio = %v, want 0", db.CommitRatio())
	}
	// An idle site reads as healthy.
	if (SiteSnapshot{}).CommitRatio() != 1 {
		t.Fatal("idle site must report ratio 1")
	}
}

func TestSiteGetOrCreateConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	sites := make([]*Site, 16)
	for i := range sites {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sites[i] = r.Site("shared")
			sites[i].Attempts.Add(1)
		}(i)
	}
	wg.Wait()
	for _, s := range sites {
		if s != sites[0] {
			t.Fatal("concurrent Site() returned distinct sites for one name")
		}
	}
	if got := r.Site("shared").Attempts.Load(); got != 16 {
		t.Fatalf("attempts = %d, want 16", got)
	}
	if len(r.Sites()) != 1 {
		t.Fatalf("registry has %d sites, want 1", len(r.Sites()))
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	s := r.Site("bst/insert")
	s.Attempts.Add(4)
	s.Commits.Add(2)
	s.Conflicts.Add(1)
	s.Capacity.Add(1)
	s.Fallbacks.Add(1)
	s.Disables.Add(1)
	s.SpecNanos.Observe(300) // bucket 1: [256, 512)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	body := sb.String()

	for _, want := range []string{
		`pto_speculation_attempts_total{site="bst/insert"} 4`,
		`pto_speculation_commits_total{site="bst/insert"} 2`,
		`pto_speculation_aborts_total{site="bst/insert",reason="conflict"} 1`,
		`pto_speculation_aborts_total{site="bst/insert",reason="capacity"} 1`,
		`pto_speculation_aborts_total{site="bst/insert",reason="explicit"} 0`,
		`pto_speculation_fallbacks_total{site="bst/insert"} 1`,
		`pto_speculation_adaptive_disables_total{site="bst/insert"} 1`,
		`pto_speculation_latency_seconds_bucket{site="bst/insert",le="+Inf"} 1`,
		`pto_speculation_latency_seconds_count{site="bst/insert"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// Cumulative buckets: the 256ns bound excludes the 300ns observation,
	// the 512ns bound includes it.
	if !strings.Contains(body, `le="2.56e-07"} 0`) {
		t.Errorf("300ns observation leaked into the 256ns bucket\n%s", body)
	}
	if !strings.Contains(body, `le="5.12e-07"} 1`) {
		t.Errorf("300ns observation missing from the 512ns cumulative bucket\n%s", body)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Site("x").Commits.Add(3)
	r.PublishExpvar("telemetry_test_registry")
	r.PublishExpvar("telemetry_test_registry") // idempotent, must not panic
	v := expvar.Get("telemetry_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if len(snap.Sites) != 1 || snap.Sites[0].Name != "x" || snap.Sites[0].Commits != 3 {
		t.Fatalf("expvar snapshot: %+v", snap)
	}
}
