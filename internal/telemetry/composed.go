package telemetry

import "sync/atomic"

// Composed-operation telemetry: the site class for the transactional
// composition layer (internal/txn). A Composed records how multi-structure
// transactions complete — inside one HTM prefix transaction (fast path),
// through an N-word MultiCAS publication (fallback), or as a validated
// read-only snapshot — plus the MCAS width distribution, which is the
// fallback's conflict footprint and helping cost. Attempt/abort-by-reason
// breakdowns for the fast path come from the speculate.Site the composition
// manager registers alongside (same name); Composed holds what a plain
// speculation site cannot express.

// NumWidthBuckets is the number of MCAS width buckets: widths 1..16 are
// exact, the last bucket collects 17 and wider.
const NumWidthBuckets = 17

// WidthBucketBound returns the width counted by bucket i, or 0 for the last
// (unbounded) bucket.
func WidthBucketBound(i int) int {
	if i >= NumWidthBuckets-1 {
		return 0
	}
	return i + 1
}

// WidthHistogram is a fixed-bucket histogram of small integer widths (MCAS
// entry counts). The zero value is ready to use; all methods are safe for
// concurrent use and never allocate.
type WidthHistogram struct {
	counts [NumWidthBuckets]atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
}

// Observe records one width observation.
func (h *WidthHistogram) Observe(width int) {
	if width < 1 {
		width = 1
	}
	b := width - 1
	if b >= NumWidthBuckets {
		b = NumWidthBuckets - 1
	}
	h.counts[b].Add(1)
	h.sum.Add(uint64(width))
	h.count.Add(1)
}

// WidthHistogramSnapshot is a plain-value copy of a WidthHistogram.
type WidthHistogramSnapshot struct {
	Buckets [NumWidthBuckets]uint64 `json:"buckets"`
	Sum     uint64                  `json:"sum"`
	Count   uint64                  `json:"count"`
}

// Snapshot copies the histogram's counters.
func (h *WidthHistogram) Snapshot() WidthHistogramSnapshot {
	var s WidthHistogramSnapshot
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Delta returns the per-interval histogram s − prev.
func (s WidthHistogramSnapshot) Delta(prev WidthHistogramSnapshot) WidthHistogramSnapshot {
	d := WidthHistogramSnapshot{Sum: s.Sum - prev.Sum, Count: s.Count - prev.Count}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Composed holds the counters for one named composed-operation site. All
// fields are cumulative and updated with single atomic adds.
type Composed struct {
	name string

	// Ops counts completed composed operations; FastCommits,
	// FallbackCommits, and ReadOnlyCommits partition it by completion path.
	Ops             atomic.Uint64
	FastCommits     atomic.Uint64
	FallbackCommits atomic.Uint64
	ReadOnlyCommits atomic.Uint64

	// MCASAttempts counts fallback publication attempts; MCASFailures the
	// ones whose validated footprint moved before the MultiCAS decided.
	MCASAttempts atomic.Uint64
	MCASFailures atomic.Uint64

	// Restarts counts capture re-runs: the fallback body observed a state it
	// had to help resolve (or a stale view) and started over.
	Restarts atomic.Uint64

	// Width is the MCAS entry-count distribution of fallback publications.
	Width WidthHistogram
}

// Name returns the composed site's registered name.
func (c *Composed) Name() string { return c.name }

// ComposedSnapshot is a plain-value copy of a Composed's counters.
type ComposedSnapshot struct {
	Name            string                 `json:"site"`
	Ops             uint64                 `json:"ops"`
	FastCommits     uint64                 `json:"fast_commits"`
	FallbackCommits uint64                 `json:"fallback_commits"`
	ReadOnlyCommits uint64                 `json:"readonly_commits"`
	MCASAttempts    uint64                 `json:"mcas_attempts"`
	MCASFailures    uint64                 `json:"mcas_failures"`
	Restarts        uint64                 `json:"restarts"`
	Width           WidthHistogramSnapshot `json:"mcas_width"`
}

// Snapshot copies the composed site's counters.
func (c *Composed) Snapshot() ComposedSnapshot {
	return ComposedSnapshot{
		Name:            c.name,
		Ops:             c.Ops.Load(),
		FastCommits:     c.FastCommits.Load(),
		FallbackCommits: c.FallbackCommits.Load(),
		ReadOnlyCommits: c.ReadOnlyCommits.Load(),
		MCASAttempts:    c.MCASAttempts.Load(),
		MCASFailures:    c.MCASFailures.Load(),
		Restarts:        c.Restarts.Load(),
		Width:           c.Width.Snapshot(),
	}
}

// Delta returns the per-interval counters s − prev. The two snapshots must
// be of the same composed site.
func (s ComposedSnapshot) Delta(prev ComposedSnapshot) ComposedSnapshot {
	return ComposedSnapshot{
		Name:            s.Name,
		Ops:             s.Ops - prev.Ops,
		FastCommits:     s.FastCommits - prev.FastCommits,
		FallbackCommits: s.FallbackCommits - prev.FallbackCommits,
		ReadOnlyCommits: s.ReadOnlyCommits - prev.ReadOnlyCommits,
		MCASAttempts:    s.MCASAttempts - prev.MCASAttempts,
		MCASFailures:    s.MCASFailures - prev.MCASFailures,
		Restarts:        s.Restarts - prev.Restarts,
		Width:           s.Width.Delta(prev.Width),
	}
}

// FastRatio returns fast-path commits over completed ops, or 1 when idle.
func (s ComposedSnapshot) FastRatio() float64 {
	if s.Ops == 0 {
		return 1
	}
	return float64(s.FastCommits) / float64(s.Ops)
}

// Composed returns the composed-operation site registered under name,
// creating it on first use. Like Site, equal names share counters.
func (r *Registry) Composed(name string) *Composed {
	r.mu.RLock()
	c := r.byComposed[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.byComposed[name]; c != nil {
		return c
	}
	if r.byComposed == nil {
		r.byComposed = make(map[string]*Composed)
	}
	c = &Composed{name: name}
	r.byComposed[name] = c
	r.corder = append(r.corder, c)
	return c
}

// ComposedSites returns the registered composed sites in registration order.
func (r *Registry) ComposedSites() []*Composed {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Composed, len(r.corder))
	copy(out, r.corder)
	return out
}
