package telemetry

import "sync/atomic"

// Open-transaction telemetry: the site class for the open multi-op
// transaction layer (internal/semtx). An Open records how user-written
// transaction bodies complete — committed, re-run because a *semantic* item
// failed commit-time validation (a key's presence, a queue's front, a PQ's
// min moved under the body), or abandoned because the body returned an
// error — plus the per-body operation-count distribution. Word-level
// attempt/abort breakdowns for the underlying commit step come from the
// speculate.Site and Composed the enclosing txn manager registers (same
// name); Open holds what those two cannot express: the semantic layer above
// them.

// Open holds the counters for one named open-transaction site. All fields
// are cumulative and updated with single atomic adds.
type Open struct {
	name string

	// Txns counts committed open transactions.
	Txns atomic.Uint64

	// SemRetries counts body re-runs forced by semantic validation: every
	// recorded item was revalidated inside the commit step and at least one
	// had changed (reason "conflict_semantic"). Word-level conflicts below
	// the semantic layer are counted by the enclosing composed/speculation
	// sites, not here.
	SemRetries atomic.Uint64

	// UserAborts counts bodies abandoned because they returned an error; no
	// buffered write was published.
	UserAborts atomic.Uint64

	// OpsPerTxn is the distribution of structure operations per committed
	// body.
	OpsPerTxn WidthHistogram
}

// Name returns the open site's registered name.
func (o *Open) Name() string { return o.name }

// OpenSnapshot is a plain-value copy of an Open's counters.
type OpenSnapshot struct {
	Name       string                 `json:"site"`
	Txns       uint64                 `json:"txns"`
	SemRetries uint64                 `json:"sem_retries"`
	UserAborts uint64                 `json:"user_aborts"`
	OpsPerTxn  WidthHistogramSnapshot `json:"ops_per_txn"`
}

// Snapshot copies the open site's counters.
func (o *Open) Snapshot() OpenSnapshot {
	return OpenSnapshot{
		Name:       o.name,
		Txns:       o.Txns.Load(),
		SemRetries: o.SemRetries.Load(),
		UserAborts: o.UserAborts.Load(),
		OpsPerTxn:  o.OpsPerTxn.Snapshot(),
	}
}

// Delta returns the per-interval counters s − prev. The two snapshots must
// be of the same open site.
func (s OpenSnapshot) Delta(prev OpenSnapshot) OpenSnapshot {
	return OpenSnapshot{
		Name:       s.Name,
		Txns:       s.Txns - prev.Txns,
		SemRetries: s.SemRetries - prev.SemRetries,
		UserAborts: s.UserAborts - prev.UserAborts,
		OpsPerTxn:  s.OpsPerTxn.Delta(prev.OpsPerTxn),
	}
}

// Open returns the open-transaction site registered under name, creating it
// on first use. Like Site, equal names share counters.
func (r *Registry) Open(name string) *Open {
	r.mu.RLock()
	o := r.byOpen[name]
	r.mu.RUnlock()
	if o != nil {
		return o
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if o = r.byOpen[name]; o != nil {
		return o
	}
	if r.byOpen == nil {
		r.byOpen = make(map[string]*Open)
	}
	o = &Open{name: name}
	r.byOpen[name] = o
	r.oorder = append(r.oorder, o)
	return o
}

// OpenSites returns the registered open sites in registration order.
func (r *Registry) OpenSites() []*Open {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Open, len(r.oorder))
	copy(out, r.oorder)
	return out
}
