package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Prometheus metric names emitted by WritePrometheus. Counters carry a
// {site="..."} label, plus {level="fast|middle|..."} when the site was
// registered per speculation level; aborts additionally carry
// {reason="conflict|capacity|explicit"}; the latency histogram follows the
// standard _bucket/_sum/_count convention with cumulative le bounds in
// seconds.
const (
	MetricAttempts  = "pto_speculation_attempts_total"
	MetricCommits   = "pto_speculation_commits_total"
	MetricAborts    = "pto_speculation_aborts_total"
	MetricFallbacks = "pto_speculation_fallbacks_total"
	MetricDisables  = "pto_speculation_adaptive_disables_total"
	MetricSkipped   = "pto_speculation_skipped_ops_total"
	MetricHelped    = "pto_speculation_helped_descs_total"
	MetricLatency   = "pto_speculation_latency_seconds"

	// Composed-operation metrics (internal/txn). Ops carry a {site="..."}
	// label; commits additionally carry {path="fast|fallback|readonly"}; the
	// width histogram follows the _bucket/_sum/_count convention with
	// cumulative le bounds in MCAS entries.
	MetricComposedOps      = "pto_composed_ops_total"
	MetricComposedCommits  = "pto_composed_commits_total"
	MetricComposedMCAS     = "pto_composed_mcas_attempts_total"
	MetricComposedMCASFail = "pto_composed_mcas_failures_total"
	MetricComposedRestarts = "pto_composed_restarts_total"
	MetricComposedWidth    = "pto_composed_mcas_width"

	// Open-transaction metrics (internal/semtx). Txns carry a {site="..."}
	// label; retries carry {reason="conflict_semantic|user"} — the semantic
	// layer's abort taxonomy above the word-level reasons of MetricAborts;
	// the ops histogram follows the _bucket/_sum/_count convention with
	// cumulative le bounds in structure operations per body.
	MetricOpenTxns    = "pto_open_txns_total"
	MetricOpenRetries = "pto_open_retries_total"
	MetricOpenOps     = "pto_open_ops_per_txn"
)

// Abort reason labels carried by MetricAborts' {reason="..."} series.
// ReasonConflict, ReasonCapacity, and ReasonExplicit mirror the simulated
// machine's abort Status strings one-for-one (a golden test in
// internal/simspec pins the parity), so dashboards can join modeled and
// runtime abort mixes by label. ReasonConflictAlias is the runtime-only
// stripe-alias attribution: the engine splits total conflict aborts into
// ReasonConflict (true data races) and ReasonConflictAlias (false sharing
// on a stripe word), which sum to the simulator's single conflict count.
const (
	ReasonConflict      = "conflict"
	ReasonConflictAlias = "conflict_alias"
	ReasonCapacity      = "capacity"
	ReasonExplicit      = "explicit"
)

// siteLabels renders a site snapshot's label set, without braces: the site
// name plus, for per-level sites, the level label.
func siteLabels(s SiteSnapshot) string {
	if s.Level == "" {
		return fmt.Sprintf("site=%q", s.Name)
	}
	return fmt.Sprintf("site=%q,level=%q", s.Name, s.Level)
}

// WritePrometheus renders every site of the registry in Prometheus text
// exposition format (version 0.0.4). Sites are emitted in name order so the
// output is stable for diffing and scraping tests.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot().Sites
	sort.Slice(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name })

	fmt.Fprintf(w, "# HELP %s Speculative transaction attempts per site.\n", MetricAttempts)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricAttempts)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{%s} %d\n", MetricAttempts, siteLabels(s), s.Attempts)
	}
	fmt.Fprintf(w, "# HELP %s Committed speculative transactions per site.\n", MetricCommits)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricCommits)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{%s} %d\n", MetricCommits, siteLabels(s), s.Commits)
	}
	fmt.Fprintf(w, "# HELP %s Aborted speculative attempts per site, by abort reason.\n", MetricAborts)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricAborts)
	for _, s := range snap {
		// Conflicts are split by the engine's attribution: "conflict" is
		// true data conflicts, "conflict_alias" the stripe-alias (false)
		// share, so the two sum to the total conflict aborts.
		fmt.Fprintf(w, "%s{%s,reason=%q} %d\n", MetricAborts, siteLabels(s), ReasonConflict, s.Conflicts-s.FalseConflicts)
		fmt.Fprintf(w, "%s{%s,reason=%q} %d\n", MetricAborts, siteLabels(s), ReasonConflictAlias, s.FalseConflicts)
		fmt.Fprintf(w, "%s{%s,reason=%q} %d\n", MetricAborts, siteLabels(s), ReasonCapacity, s.Capacity)
		fmt.Fprintf(w, "%s{%s,reason=%q} %d\n", MetricAborts, siteLabels(s), ReasonExplicit, s.Explicit)
	}
	fmt.Fprintf(w, "# HELP %s Operations completed by the nonblocking fallback per site.\n", MetricFallbacks)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricFallbacks)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{%s} %d\n", MetricFallbacks, siteLabels(s), s.Fallbacks)
	}
	fmt.Fprintf(w, "# HELP %s Adaptive-disable events per site.\n", MetricDisables)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricDisables)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{%s} %d\n", MetricDisables, siteLabels(s), s.Disables)
	}
	fmt.Fprintf(w, "# HELP %s Operations that skipped speculation while adaptively disabled.\n", MetricSkipped)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricSkipped)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{%s} %d\n", MetricSkipped, siteLabels(s), s.Skipped)
	}
	fmt.Fprintf(w, "# HELP %s MultiCAS descriptors helped to decision inside speculative attempts per site.\n", MetricHelped)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricHelped)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{%s} %d\n", MetricHelped, siteLabels(s), s.Helped)
	}
	fmt.Fprintf(w, "# HELP %s Speculative-phase latency per site.\n", MetricLatency)
	fmt.Fprintf(w, "# TYPE %s histogram\n", MetricLatency)
	for _, s := range snap {
		var cum uint64
		for i, c := range s.SpecNanos.Buckets {
			cum += c
			if ub := BucketUpperBound(i); ub != 0 {
				fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n",
					MetricLatency, siteLabels(s), float64(ub)/1e9, cum)
			}
		}
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", MetricLatency, siteLabels(s), cum)
		fmt.Fprintf(w, "%s_sum{%s} %g\n", MetricLatency, siteLabels(s), float64(s.SpecNanos.SumNs)/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", MetricLatency, siteLabels(s), s.SpecNanos.Count)
	}

	comp := r.Snapshot().Composed
	if len(comp) == 0 {
		r.writePrometheusOpen(w)
		return
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i].Name < comp[j].Name })
	fmt.Fprintf(w, "# HELP %s Completed composed operations per site.\n", MetricComposedOps)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricComposedOps)
	for _, c := range comp {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricComposedOps, c.Name, c.Ops)
	}
	fmt.Fprintf(w, "# HELP %s Composed-operation commits per site, by completion path.\n", MetricComposedCommits)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricComposedCommits)
	for _, c := range comp {
		fmt.Fprintf(w, "%s{site=%q,path=\"fast\"} %d\n", MetricComposedCommits, c.Name, c.FastCommits)
		fmt.Fprintf(w, "%s{site=%q,path=\"fallback\"} %d\n", MetricComposedCommits, c.Name, c.FallbackCommits)
		fmt.Fprintf(w, "%s{site=%q,path=\"readonly\"} %d\n", MetricComposedCommits, c.Name, c.ReadOnlyCommits)
	}
	fmt.Fprintf(w, "# HELP %s Fallback MultiCAS publication attempts per site.\n", MetricComposedMCAS)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricComposedMCAS)
	for _, c := range comp {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricComposedMCAS, c.Name, c.MCASAttempts)
	}
	fmt.Fprintf(w, "# HELP %s Fallback MultiCAS publications that lost their validation race.\n", MetricComposedMCASFail)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricComposedMCASFail)
	for _, c := range comp {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricComposedMCASFail, c.Name, c.MCASFailures)
	}
	fmt.Fprintf(w, "# HELP %s Fallback capture re-runs (helping or stale view) per site.\n", MetricComposedRestarts)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricComposedRestarts)
	for _, c := range comp {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricComposedRestarts, c.Name, c.Restarts)
	}
	fmt.Fprintf(w, "# HELP %s MCAS width (entries) of fallback publications per site.\n", MetricComposedWidth)
	fmt.Fprintf(w, "# TYPE %s histogram\n", MetricComposedWidth)
	for _, c := range comp {
		var cum uint64
		for i, n := range c.Width.Buckets {
			cum += n
			if ub := WidthBucketBound(i); ub != 0 {
				fmt.Fprintf(w, "%s_bucket{site=%q,le=\"%d\"} %d\n", MetricComposedWidth, c.Name, ub, cum)
			}
		}
		fmt.Fprintf(w, "%s_bucket{site=%q,le=\"+Inf\"} %d\n", MetricComposedWidth, c.Name, cum)
		fmt.Fprintf(w, "%s_sum{site=%q} %d\n", MetricComposedWidth, c.Name, c.Width.Sum)
		fmt.Fprintf(w, "%s_count{site=%q} %d\n", MetricComposedWidth, c.Name, c.Width.Count)
	}
	r.writePrometheusOpen(w)
}

// writePrometheusOpen renders the open-transaction sites, in name order.
func (r *Registry) writePrometheusOpen(w io.Writer) {
	open := r.Snapshot().Open
	if len(open) == 0 {
		return
	}
	sort.Slice(open, func(i, j int) bool { return open[i].Name < open[j].Name })
	fmt.Fprintf(w, "# HELP %s Committed open transactions per site.\n", MetricOpenTxns)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricOpenTxns)
	for _, o := range open {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricOpenTxns, o.Name, o.Txns)
	}
	fmt.Fprintf(w, "# HELP %s Open-transaction body re-runs and abandons per site, by reason.\n", MetricOpenRetries)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricOpenRetries)
	for _, o := range open {
		fmt.Fprintf(w, "%s{site=%q,reason=\"conflict_semantic\"} %d\n", MetricOpenRetries, o.Name, o.SemRetries)
		fmt.Fprintf(w, "%s{site=%q,reason=\"user\"} %d\n", MetricOpenRetries, o.Name, o.UserAborts)
	}
	fmt.Fprintf(w, "# HELP %s Structure operations per committed open-transaction body.\n", MetricOpenOps)
	fmt.Fprintf(w, "# TYPE %s histogram\n", MetricOpenOps)
	for _, o := range open {
		var cum uint64
		for i, n := range o.OpsPerTxn.Buckets {
			cum += n
			if ub := WidthBucketBound(i); ub != 0 {
				fmt.Fprintf(w, "%s_bucket{site=%q,le=\"%d\"} %d\n", MetricOpenOps, o.Name, ub, cum)
			}
		}
		fmt.Fprintf(w, "%s_bucket{site=%q,le=\"+Inf\"} %d\n", MetricOpenOps, o.Name, cum)
		fmt.Fprintf(w, "%s_sum{site=%q} %d\n", MetricOpenOps, o.Name, o.OpsPerTxn.Sum)
		fmt.Fprintf(w, "%s_count{site=%q} %d\n", MetricOpenOps, o.Name, o.OpsPerTxn.Count)
	}
}

// Handler returns an http.Handler serving the registry in Prometheus text
// exposition format, suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
