package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Prometheus metric names emitted by WritePrometheus. Counters carry a
// {site="..."} label; aborts additionally carry {reason="conflict|capacity|
// explicit"}; the latency histogram follows the standard _bucket/_sum/_count
// convention with cumulative le bounds in seconds.
const (
	MetricAttempts  = "pto_speculation_attempts_total"
	MetricCommits   = "pto_speculation_commits_total"
	MetricAborts    = "pto_speculation_aborts_total"
	MetricFallbacks = "pto_speculation_fallbacks_total"
	MetricDisables  = "pto_speculation_adaptive_disables_total"
	MetricSkipped   = "pto_speculation_skipped_ops_total"
	MetricLatency   = "pto_speculation_latency_seconds"
)

// WritePrometheus renders every site of the registry in Prometheus text
// exposition format (version 0.0.4). Sites are emitted in name order so the
// output is stable for diffing and scraping tests.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot().Sites
	sort.Slice(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name })

	fmt.Fprintf(w, "# HELP %s Speculative transaction attempts per site.\n", MetricAttempts)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricAttempts)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricAttempts, s.Name, s.Attempts)
	}
	fmt.Fprintf(w, "# HELP %s Committed speculative transactions per site.\n", MetricCommits)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricCommits)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricCommits, s.Name, s.Commits)
	}
	fmt.Fprintf(w, "# HELP %s Aborted speculative attempts per site, by abort reason.\n", MetricAborts)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricAborts)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{site=%q,reason=\"conflict\"} %d\n", MetricAborts, s.Name, s.Conflicts)
		fmt.Fprintf(w, "%s{site=%q,reason=\"capacity\"} %d\n", MetricAborts, s.Name, s.Capacity)
		fmt.Fprintf(w, "%s{site=%q,reason=\"explicit\"} %d\n", MetricAborts, s.Name, s.Explicit)
	}
	fmt.Fprintf(w, "# HELP %s Operations completed by the nonblocking fallback per site.\n", MetricFallbacks)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricFallbacks)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricFallbacks, s.Name, s.Fallbacks)
	}
	fmt.Fprintf(w, "# HELP %s Adaptive-disable events per site.\n", MetricDisables)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricDisables)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricDisables, s.Name, s.Disables)
	}
	fmt.Fprintf(w, "# HELP %s Operations that skipped speculation while adaptively disabled.\n", MetricSkipped)
	fmt.Fprintf(w, "# TYPE %s counter\n", MetricSkipped)
	for _, s := range snap {
		fmt.Fprintf(w, "%s{site=%q} %d\n", MetricSkipped, s.Name, s.Skipped)
	}
	fmt.Fprintf(w, "# HELP %s Speculative-phase latency per site.\n", MetricLatency)
	fmt.Fprintf(w, "# TYPE %s histogram\n", MetricLatency)
	for _, s := range snap {
		var cum uint64
		for i, c := range s.SpecNanos.Buckets {
			cum += c
			if ub := BucketUpperBound(i); ub != 0 {
				fmt.Fprintf(w, "%s_bucket{site=%q,le=\"%g\"} %d\n",
					MetricLatency, s.Name, float64(ub)/1e9, cum)
			}
		}
		fmt.Fprintf(w, "%s_bucket{site=%q,le=\"+Inf\"} %d\n", MetricLatency, s.Name, cum)
		fmt.Fprintf(w, "%s_sum{site=%q} %g\n", MetricLatency, s.Name, float64(s.SpecNanos.SumNs)/1e9)
		fmt.Fprintf(w, "%s_count{site=%q} %d\n", MetricLatency, s.Name, s.SpecNanos.Count)
	}
}

// Handler returns an http.Handler serving the registry in Prometheus text
// exposition format, suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
