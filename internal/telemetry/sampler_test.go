package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSamplerFinalFlushOnStop: activity accumulated after the last tick is
// not dropped — Stop flushes one final partial-interval delta. The interval
// is an hour, so the only line the sampler can ever emit here is the stop
// flush.
func TestSamplerFinalFlushOnStop(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var lines []string
	s := StartSampler(r, time.Hour, func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	site := r.Site("drain/test")
	site.Attempts.Add(10)
	site.Commits.Add(9)
	s.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d sampler lines, want exactly the final flush: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "drain/test") {
		t.Fatalf("final flush %q does not report the active site", lines[0])
	}
	// Stop is idempotent and must not flush twice.
	s.Stop()
	if len(lines) != 1 {
		t.Fatalf("second Stop emitted another flush: %q", lines)
	}
}
