// Package telemetry is an allocation-free metrics subsystem for the
// speculation runtime (internal/speculate) and any future hot-path
// instrumentation.
//
// The unit of instrumentation is a Site: one named speculation call site
// (e.g. "bst/insert") holding a set of cumulative counters — attempts,
// commits, the abort-reason breakdown mirroring htm.Status, fallbacks,
// adaptive-disable events, skipped operations — plus a fixed-bucket latency
// histogram of the speculative phase. All updates are single atomic adds:
// nothing on the hot path allocates, takes a lock, or formats a string.
//
// Sites live in a Registry. Registration (Registry.Site) is the only
// locking operation and is expected at structure-construction time, not per
// operation; looking up an existing site takes only an RLock. A Registry can
// be snapshotted into plain values (Snapshot), two snapshots can be
// subtracted (Delta) to get a per-interval view, and a Registry can be
// published through expvar (PublishExpvar) or rendered in Prometheus text
// exposition format (WritePrometheus / Handler).
package telemetry

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
)

// NumBuckets is the number of latency histogram buckets. Bucket i counts
// observations in [2^(i+7), 2^(i+8)) nanoseconds — the first bucket is
// everything below 256ns, the last is everything at or above ~4.2ms.
const NumBuckets = 16

// bucketFloorNs is the upper bound (exclusive) of bucket 0 in nanoseconds.
const bucketFloorNs = 256

// BucketUpperBound returns the exclusive upper bound of bucket i in
// nanoseconds, or 0 for the last (unbounded) bucket.
func BucketUpperBound(i int) uint64 {
	if i >= NumBuckets-1 {
		return 0
	}
	return bucketFloorNs << uint(i)
}

// bucketFor maps a nanosecond observation to its bucket index.
func bucketFor(ns uint64) int {
	if ns < bucketFloorNs {
		return 0
	}
	b := bits.Len64(ns) - bits.Len64(bucketFloorNs) + 1
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Histogram is a fixed-bucket latency histogram with power-of-two
// nanosecond buckets. The zero value is ready to use; all methods are safe
// for concurrent use and never allocate.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds observed
	count  atomic.Uint64
}

// Observe records one latency observation in nanoseconds.
func (h *Histogram) Observe(ns uint64) {
	h.counts[bucketFor(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// HistogramSnapshot is a plain-value copy of a Histogram.
type HistogramSnapshot struct {
	Buckets [NumBuckets]uint64 `json:"buckets"`
	SumNs   uint64             `json:"sum_ns"`
	Count   uint64             `json:"count"`
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.SumNs = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Delta returns the per-interval histogram s − prev.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{SumNs: s.SumNs - prev.SumNs, Count: s.Count - prev.Count}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Site holds the speculation counters for one named call site. All fields
// are cumulative and updated with single atomic adds.
type Site struct {
	name string
	// level labels the speculation level this site represents ("fast",
	// "middle", "pto1", ...) when the registering driver splits one call
	// site into per-level sites; empty for aggregate sites. It is carried
	// into snapshots and emitted as a Prometheus label.
	level string

	// Attempts counts transaction attempts; Commits and the three abort
	// counters partition it by htm.Status.
	Attempts  atomic.Uint64
	Commits   atomic.Uint64
	Conflicts atomic.Uint64
	Capacity  atomic.Uint64
	Explicit  atomic.Uint64
	// FalseConflicts is the subset of Conflicts the engine attributed to
	// stripe aliasing — two unrelated Vars sharing an ownership record —
	// rather than a true data conflict. Only the real-concurrency htm
	// substrate produces them; the simulator's conflict detection is exact,
	// so its sites report zero.
	FalseConflicts atomic.Uint64

	// Fallbacks counts operations completed by the nonblocking fallback.
	Fallbacks atomic.Uint64
	// Disables counts adaptive-disable events (a site's commit ratio fell
	// below the policy threshold and speculation was switched off).
	Disables atomic.Uint64
	// Skipped counts operations that bypassed speculation entirely because
	// the site was adaptively disabled.
	Skipped atomic.Uint64
	// Helped counts MultiCAS descriptors a speculative attempt helped to
	// decision from inside its transaction — the middle path's cooperative
	// work. Only helping-capable levels produce them; fast levels report
	// zero (they kill or defer instead of helping).
	Helped atomic.Uint64

	// SpecNanos is the latency of the speculative phase: Begin to commit,
	// or Begin to the fallback decision.
	SpecNanos Histogram
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Level returns the site's level label, or "" for an aggregate site.
func (s *Site) Level() string { return s.level }

// SiteSnapshot is a plain-value copy of a Site's counters.
type SiteSnapshot struct {
	Name           string            `json:"site"`
	Level          string            `json:"level,omitempty"`
	Attempts       uint64            `json:"attempts"`
	Commits        uint64            `json:"commits"`
	Conflicts      uint64            `json:"conflicts"`
	FalseConflicts uint64            `json:"false_conflicts"`
	Capacity       uint64            `json:"capacity"`
	Explicit       uint64            `json:"explicit"`
	Fallbacks      uint64            `json:"fallbacks"`
	Disables       uint64            `json:"adaptive_disables"`
	Skipped        uint64            `json:"skipped_ops"`
	Helped         uint64            `json:"helped_descs"`
	SpecNanos      HistogramSnapshot `json:"spec_latency"`
}

// Snapshot copies the site's counters.
func (s *Site) Snapshot() SiteSnapshot {
	return SiteSnapshot{
		Name:           s.name,
		Level:          s.level,
		Attempts:       s.Attempts.Load(),
		Commits:        s.Commits.Load(),
		Conflicts:      s.Conflicts.Load(),
		FalseConflicts: s.FalseConflicts.Load(),
		Capacity:       s.Capacity.Load(),
		Explicit:       s.Explicit.Load(),
		Fallbacks:      s.Fallbacks.Load(),
		Disables:       s.Disables.Load(),
		Skipped:        s.Skipped.Load(),
		Helped:         s.Helped.Load(),
		SpecNanos:      s.SpecNanos.Snapshot(),
	}
}

// Delta returns the per-interval counters s − prev. The two snapshots must
// be of the same site.
func (s SiteSnapshot) Delta(prev SiteSnapshot) SiteSnapshot {
	return SiteSnapshot{
		Name:           s.Name,
		Level:          s.Level,
		Attempts:       s.Attempts - prev.Attempts,
		Commits:        s.Commits - prev.Commits,
		Conflicts:      s.Conflicts - prev.Conflicts,
		FalseConflicts: s.FalseConflicts - prev.FalseConflicts,
		Capacity:       s.Capacity - prev.Capacity,
		Explicit:       s.Explicit - prev.Explicit,
		Fallbacks:      s.Fallbacks - prev.Fallbacks,
		Disables:       s.Disables - prev.Disables,
		Skipped:        s.Skipped - prev.Skipped,
		Helped:         s.Helped - prev.Helped,
		SpecNanos:      s.SpecNanos.Delta(prev.SpecNanos),
	}
}

// CommitRatio returns commits/attempts, or 1 when no attempt was made (an
// idle site is healthy, not broken).
func (s SiteSnapshot) CommitRatio() float64 {
	if s.Attempts == 0 {
		return 1
	}
	return float64(s.Commits) / float64(s.Attempts)
}

// Registry is a named collection of Sites. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Site
	order  []*Site // registration order, for stable output

	byComposed map[string]*Composed
	corder     []*Composed

	byOpen map[string]*Open
	oorder []*Open

	published sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:     make(map[string]*Site),
		byComposed: make(map[string]*Composed),
	}
}

// Default is the process-wide registry used when no explicit registry is
// configured.
var Default = NewRegistry()

// Site returns the site registered under name, creating it on first use.
// Two structures registering the same name share counters (aggregation
// across instances is usually what a fleet-wide view wants).
func (r *Registry) Site(name string) *Site {
	return r.SiteAt(name, "")
}

// SiteAt is Site with a level label: drivers that split one call site into
// per-level sites ("txn/atomic/fast", "txn/atomic/middle") register each
// with its level name so exports can aggregate and filter by level. The
// label is fixed at first registration; later registrations under the same
// name share the existing site regardless of the level they pass.
func (r *Registry) SiteAt(name, level string) *Site {
	r.mu.RLock()
	s := r.byName[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.byName[name]; s != nil {
		return s
	}
	s = &Site{name: name, level: level}
	r.byName[name] = s
	r.order = append(r.order, s)
	return s
}

// Sites returns the registered sites in registration order.
func (r *Registry) Sites() []*Site {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Site, len(r.order))
	copy(out, r.order)
	return out
}

// Snapshot is a plain-value copy of every site in a registry.
type Snapshot struct {
	Sites    []SiteSnapshot     `json:"sites"`
	Composed []ComposedSnapshot `json:"composed,omitempty"`
	Open     []OpenSnapshot     `json:"open,omitempty"`
}

// Snapshot copies every site's counters in registration order.
func (r *Registry) Snapshot() Snapshot {
	sites := r.Sites()
	out := Snapshot{Sites: make([]SiteSnapshot, 0, len(sites))}
	for _, s := range sites {
		out.Sites = append(out.Sites, s.Snapshot())
	}
	for _, c := range r.ComposedSites() {
		out.Composed = append(out.Composed, c.Snapshot())
	}
	for _, o := range r.OpenSites() {
		out.Open = append(out.Open, o.Snapshot())
	}
	return out
}

// Delta returns the per-interval view s − prev, matching sites by name.
// Sites absent from prev are returned as-is (they appeared during the
// interval).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	old := make(map[string]SiteSnapshot, len(prev.Sites))
	for _, p := range prev.Sites {
		old[p.Name] = p
	}
	out := Snapshot{Sites: make([]SiteSnapshot, 0, len(s.Sites))}
	for _, cur := range s.Sites {
		if p, ok := old[cur.Name]; ok {
			out.Sites = append(out.Sites, cur.Delta(p))
		} else {
			out.Sites = append(out.Sites, cur)
		}
	}
	oldC := make(map[string]ComposedSnapshot, len(prev.Composed))
	for _, p := range prev.Composed {
		oldC[p.Name] = p
	}
	for _, cur := range s.Composed {
		if p, ok := oldC[cur.Name]; ok {
			out.Composed = append(out.Composed, cur.Delta(p))
		} else {
			out.Composed = append(out.Composed, cur)
		}
	}
	oldO := make(map[string]OpenSnapshot, len(prev.Open))
	for _, p := range prev.Open {
		oldO[p.Name] = p
	}
	for _, cur := range s.Open {
		if p, ok := oldO[cur.Name]; ok {
			out.Open = append(out.Open, cur.Delta(p))
		} else {
			out.Open = append(out.Open, cur)
		}
	}
	return out
}

// SnapshotInto refills *dst with the current counters, reusing its slices.
// Steady-state callers on a tight cadence — the sampler's tick loop, the
// tune controller at a 10ms interval — allocate nothing once dst's slices
// have grown to the registry's size: every snapshot element is a plain
// value (fixed-array histograms included), so truncate-and-append recycles
// the backing arrays.
func (r *Registry) SnapshotInto(dst *Snapshot) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dst.Sites = dst.Sites[:0]
	for _, s := range r.order {
		dst.Sites = append(dst.Sites, s.Snapshot())
	}
	dst.Composed = dst.Composed[:0]
	for _, c := range r.corder {
		dst.Composed = append(dst.Composed, c.Snapshot())
	}
	dst.Open = dst.Open[:0]
	for _, o := range r.oorder {
		dst.Open = append(dst.Open, o.Snapshot())
	}
}

// DeltaInto computes s − prev into *dst, reusing dst's slices; dst must not
// alias s or prev. Because registration order is append-only, two snapshots
// of the same registry agree positionally on their common prefix; that fast
// path is allocation-free, and the by-name map fallback of Delta runs only
// when the prefix check fails (snapshots from different registries).
func (s *Snapshot) DeltaInto(prev, dst *Snapshot) {
	if sitesAligned(s, prev) {
		dst.Sites = dst.Sites[:0]
		for i := range s.Sites {
			if i < len(prev.Sites) {
				dst.Sites = append(dst.Sites, s.Sites[i].Delta(prev.Sites[i]))
			} else {
				dst.Sites = append(dst.Sites, s.Sites[i])
			}
		}
		dst.Composed = dst.Composed[:0]
		for i := range s.Composed {
			if i < len(prev.Composed) {
				dst.Composed = append(dst.Composed, s.Composed[i].Delta(prev.Composed[i]))
			} else {
				dst.Composed = append(dst.Composed, s.Composed[i])
			}
		}
		dst.Open = dst.Open[:0]
		for i := range s.Open {
			if i < len(prev.Open) {
				dst.Open = append(dst.Open, s.Open[i].Delta(prev.Open[i]))
			} else {
				dst.Open = append(dst.Open, s.Open[i])
			}
		}
		return
	}
	*dst = s.Delta(*prev)
}

// sitesAligned reports whether prev's entries are a positional prefix of
// s's in every section — always true for two snapshots of one registry
// taken prev-first, since registration only appends.
func sitesAligned(s, prev *Snapshot) bool {
	if len(prev.Sites) > len(s.Sites) || len(prev.Composed) > len(s.Composed) || len(prev.Open) > len(s.Open) {
		return false
	}
	for i := range prev.Sites {
		if s.Sites[i].Name != prev.Sites[i].Name {
			return false
		}
	}
	for i := range prev.Composed {
		if s.Composed[i].Name != prev.Composed[i].Name {
			return false
		}
	}
	for i := range prev.Open {
		if s.Open[i].Name != prev.Open[i].Name {
			return false
		}
	}
	return true
}

// PublishExpvar publishes the registry under the given expvar name; each
// read of the var produces a fresh Snapshot. Safe to call more than once
// (only the first call publishes; expvar forbids duplicate names).
func (r *Registry) PublishExpvar(name string) {
	r.published.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
