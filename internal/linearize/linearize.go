// Package linearize implements a small linearizability checker for set
// histories (insert / remove / contains with boolean results), in the style
// of Wing & Gong's algorithm: search for a total order of operations that
// respects the real-time partial order (operation windows) and the
// sequential specification of a set.
//
// It exists to give the reproduction's data structures a correctness
// standard stronger than invariant checks: the simulator's deterministic
// global event order yields exact per-operation windows, so histories
// recorded there are checked against the precise real-time order.
package linearize

import "sort"

// Kind is an operation type.
type Kind int

const (
	// Insert adds a key; Result reports whether it was absent.
	Insert Kind = iota
	// Remove deletes a key; Result reports whether it was present.
	Remove
	// Contains queries a key; Result reports presence.
	Contains
)

// Op is one completed operation with its real-time window: the operation's
// linearization point lies somewhere in [Start, End].
type Op struct {
	Start, End uint64
	Kind       Kind
	Key        int64
	Result     bool
}

// Check reports whether the history is linearizable with respect to the
// sequential set specification, starting from an empty set. The search is
// exponential in the worst case; histories should stay small (≲ 40 ops).
func Check(history []Op) bool {
	n := len(history)
	if n == 0 {
		return true
	}
	if n > 62 {
		panic("linearize: history too large")
	}
	ops := append([]Op(nil), history...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })

	type stateKey struct {
		done uint64
		set  uint64 // hash of the current set contents
	}
	visited := make(map[stateKey]bool)

	// The current set is tracked exactly in a map; its hash keys the memo.
	set := make(map[int64]bool)
	var hash uint64 = 1469598103934665603
	rehash := func() uint64 {
		var h uint64 = 1469598103934665603
		for k := range set {
			// Order-independent combine.
			x := uint64(k) * 0x9E3779B97F4A7C15
			x ^= x >> 29
			h += x*0xBF58476D1CE4E5B9 + 1
		}
		return h
	}

	// apply runs op against the model; ok reports whether the observed
	// result matches the specification.
	apply := func(op Op) (undo func(), ok bool) {
		switch op.Kind {
		case Insert:
			present := set[op.Key]
			if op.Result == present {
				return nil, false
			}
			if present {
				return func() {}, true // failed insert: no state change
			}
			set[op.Key] = true
			return func() { delete(set, op.Key) }, true
		case Remove:
			present := set[op.Key]
			if op.Result != present {
				return nil, false
			}
			if present {
				delete(set, op.Key)
				return func() { set[op.Key] = true }, true
			}
			return func() {}, true
		default:
			if op.Result != set[op.Key] {
				return nil, false
			}
			return func() {}, true
		}
	}

	var dfs func(done uint64) bool
	dfs = func(done uint64) bool {
		if done == 1<<uint(n)-1 {
			return true
		}
		key := stateKey{done: done, set: hash}
		if visited[key] {
			return false
		}
		visited[key] = true
		// An undone op may linearize next only if no other undone op's
		// window ends strictly before this op's window starts (real-time
		// order: if a.End < b.Start, a must precede b).
		minEnd := ^uint64(0)
		for i := 0; i < n; i++ {
			if done&(1<<uint(i)) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			if ops[i].Start > minEnd {
				continue // some earlier-finishing op must come first
			}
			undo, ok := apply(ops[i])
			if !ok {
				continue
			}
			oldHash := hash
			hash = rehash()
			if dfs(done | 1<<uint(i)) {
				return true
			}
			hash = oldHash
			undo()
		}
		return false
	}
	return dfs(0)
}
