package linearize

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bst"
	"repro/internal/hashtable"
	"repro/internal/list"
	"repro/internal/skiplist"
)

// These tests record small concurrent histories against the real-concurrency
// data structures, with operation windows taken from the monotonic clock
// (the window [before, after] always contains the linearization point), and
// check them with the Wing&Gong-style checker. Small op counts keep the
// exponential search tractable.

type realSet interface {
	Insert(k int64) bool
	Remove(k int64) bool
	Contains(k int64) bool
}

func checkRealSet(t *testing.T, name string, mk func() realSet) {
	t.Helper()
	const goroutines, opsPer, rounds = 3, 10, 12
	for round := 0; round < rounds; round++ {
		s := mk()
		base := time.Now()
		histories := make([][]Op, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rnd := uint64(g*977 + round*31 + 1)
				for i := 0; i < opsPer; i++ {
					rnd ^= rnd << 13
					rnd ^= rnd >> 7
					rnd ^= rnd << 17
					key := int64(rnd%3 + 1)
					start := uint64(time.Since(base))
					var op Op
					switch rnd >> 8 % 3 {
					case 0:
						op = Op{Kind: Insert, Key: key, Result: s.Insert(key)}
					case 1:
						op = Op{Kind: Remove, Key: key, Result: s.Remove(key)}
					default:
						op = Op{Kind: Contains, Key: key, Result: s.Contains(key)}
					}
					op.Start, op.End = start, uint64(time.Since(base))
					histories[g] = append(histories[g], op)
				}
			}(g)
		}
		wg.Wait()
		var all []Op
		for _, h := range histories {
			all = append(all, h...)
		}
		if !Check(all) {
			t.Fatalf("%s round %d: history not linearizable:\n%+v", name, round, all)
		}
	}
}

func TestLinearizableRealBST(t *testing.T) {
	checkRealSet(t, "bst-lockfree", func() realSet { return bst.New() })
	checkRealSet(t, "bst-pto1", func() realSet { return bst.NewPTO1() })
	checkRealSet(t, "bst-pto2", func() realSet { return bst.NewPTO2() })
	checkRealSet(t, "bst-pto12", func() realSet { return bst.NewPTO12() })
}

func TestLinearizableRealHash(t *testing.T) {
	checkRealSet(t, "hash-lockfree", func() realSet { return hashtable.NewTable(2) })
	checkRealSet(t, "hash-pto", func() realSet { return hashtable.NewPTOTable(2, 0) })
	checkRealSet(t, "hash-inplace", func() realSet { return hashtable.NewInplaceTable(2, 0) })
}

func TestLinearizableRealSkiplist(t *testing.T) {
	checkRealSet(t, "skip-lockfree", func() realSet { return skiplist.NewSet() })
	checkRealSet(t, "skip-pto", func() realSet { return skiplist.NewPTOSet(0) })
}

func TestLinearizableRealList(t *testing.T) {
	checkRealSet(t, "list-lockfree", func() realSet { return list.New() })
	checkRealSet(t, "list-pto", func() realSet { return list.NewPTO(0) })
}
