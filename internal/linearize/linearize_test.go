package linearize

import "testing"

func TestSequentialHistoryAccepted(t *testing.T) {
	h := []Op{
		{0, 1, Insert, 5, true},
		{2, 3, Contains, 5, true},
		{4, 5, Remove, 5, true},
		{6, 7, Contains, 5, false},
	}
	if !Check(h) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestWrongResultRejected(t *testing.T) {
	h := []Op{
		{0, 1, Insert, 5, true},
		{2, 3, Contains, 5, false}, // must see the insert
	}
	if Check(h) {
		t.Fatal("stale read accepted")
	}
}

func TestDoubleInsertRejected(t *testing.T) {
	h := []Op{
		{0, 1, Insert, 5, true},
		{2, 3, Insert, 5, true}, // second must fail
	}
	if Check(h) {
		t.Fatal("double successful insert accepted")
	}
}

func TestOverlapAllowsEitherOrder(t *testing.T) {
	// Two overlapping inserts of the same key: exactly one may succeed, in
	// either order.
	h := []Op{
		{0, 10, Insert, 5, true},
		{1, 9, Insert, 5, false},
	}
	if !Check(h) {
		t.Fatal("overlapping inserts with one success rejected")
	}
	h[1].Result = true
	if Check(h) {
		t.Fatal("overlapping inserts with two successes accepted")
	}
}

func TestConcurrentReadMaySeeEitherState(t *testing.T) {
	// A contains overlapping an insert may return either value.
	for _, res := range []bool{true, false} {
		h := []Op{
			{0, 10, Insert, 5, true},
			{1, 9, Contains, 5, res},
		}
		if !Check(h) {
			t.Fatalf("contains=%v overlapping insert rejected", res)
		}
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Insert completes strictly before the contains starts: it must be seen.
	h := []Op{
		{0, 1, Insert, 5, true},
		{5, 6, Contains, 5, false},
	}
	if Check(h) {
		t.Fatal("real-time order violated but history accepted")
	}
	// If they overlap, the miss is fine.
	h[1].Start = 0
	if !Check(h) {
		t.Fatal("overlapping miss rejected")
	}
}

func TestRemoveOfAbsentKey(t *testing.T) {
	h := []Op{
		{0, 1, Remove, 9, false},
		{2, 3, Insert, 9, true},
		{4, 5, Remove, 9, true},
	}
	if !Check(h) {
		t.Fatal("valid remove sequence rejected")
	}
}

func TestEmptyHistory(t *testing.T) {
	if !Check(nil) {
		t.Fatal("empty history rejected")
	}
}

func TestThreeThreadInterleaving(t *testing.T) {
	// A richer valid history with overlapping windows across "threads".
	h := []Op{
		{0, 4, Insert, 1, true},
		{1, 5, Insert, 2, true},
		{2, 8, Remove, 1, true},     // linearizes after insert(1)
		{3, 9, Contains, 2, true},   // after insert(2)
		{6, 10, Contains, 1, false}, // after remove(1)
	}
	if !Check(h) {
		t.Fatal("valid three-thread history rejected")
	}
}

// TestGeneratedLinearizableHistoriesAccepted builds histories by simulating
// a true linearization order and then widening each operation's window
// randomly; the checker must accept all of them.
func TestGeneratedLinearizableHistoriesAccepted(t *testing.T) {
	rnd := func(seed *uint64) uint64 {
		*seed ^= *seed << 13
		*seed ^= *seed >> 7
		*seed ^= *seed << 17
		return *seed
	}
	for trial := uint64(1); trial <= 200; trial++ {
		seed := trial * 2654435761
		set := map[int64]bool{}
		var h []Op
		n := 10 + int(rnd(&seed)%20)
		for i := 0; i < n; i++ {
			key := int64(rnd(&seed)%3 + 1)
			point := uint64(i * 10)
			var op Op
			switch rnd(&seed) % 3 {
			case 0:
				op = Op{Kind: Insert, Key: key, Result: !set[key]}
				set[key] = true
			case 1:
				op = Op{Kind: Remove, Key: key, Result: set[key]}
				delete(set, key)
			default:
				op = Op{Kind: Contains, Key: key, Result: set[key]}
			}
			// Widen the window randomly around the linearization point.
			before := rnd(&seed) % 15
			after := rnd(&seed) % 15
			if before > point {
				before = point
			}
			op.Start, op.End = point-before, point+after
			h = append(h, op)
		}
		if !Check(h) {
			t.Fatalf("trial %d: linearizable-by-construction history rejected:\n%+v", trial, h)
		}
	}
}
