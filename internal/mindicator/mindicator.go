// Package mindicator implements a Mindicator-like quiescence structure
// (Liu, Luchangco, Spear 2013): a static complete binary tree that maintains
// the minimum over at most one value per participating thread, with
// operations Arrive (offer a value), Depart (withdraw it), and Query (read
// the current minimum). SNZI and the f-array are its relatives; unlike the
// f-array not every operation must reach the root, and unlike SNZI it
// computes min rather than a saturating bit.
//
// # Baseline protocol
//
// Each tree node is one 64-bit word packing a version counter and the node's
// current minimum. An update writes its leaf, then walks toward the root
// repairing each ancestor: read both children, recompute the minimum, and
// install it with a versioned CAS. The walk stops early at the first ancestor
// whose value the update does not change. Because the two child reads and the
// parent CAS are not atomic, an upward pass alone can install a stale
// minimum; the baseline therefore makes a second, downward validation pass
// over the same ancestors — re-reading children, re-fixing any node that
// went stale, and bubbling each such fix toward the root (a value installed
// by validation must be propagated by its writer, or a concurrent updater's
// early-stopped ascent would strand it) — before returning. This up-then-down structure (a versioned
// write per node in each direction) plays the role of the original
// Mindicator's mark-up/unmark-down discipline and is exactly the redundancy
// PTO eliminates: inside a transaction the child reads and the parent write
// are atomic, so one pass with one plain store per node suffices, and the
// version is simply advanced by two in that single store (the paper's
// "incremented once, by two"), eliminating the downward traversal entirely.
//
// Deviation from the original: the original Mindicator's Query is
// linearizable; this variant guarantees quiescent consistency and
// self-visibility after repair settles, which is sufficient for its standard
// uses (quiescence detection, minimum-epoch tracking) and for reproducing the
// paper's cost structure. See DESIGN.md §7.
package mindicator

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/speculate"
)

// Infinity is the encoded "no value" sentinel. Values passed to Arrive must
// be less than math.MaxInt32.
const infEnc = math.MaxUint32

// enc maps int32 values to uint32 so that unsigned comparison matches signed
// comparison, reserving the top encoding for "absent".
func enc(v int32) uint32 { return uint32(v) ^ 0x80000000 }

func dec(e uint32) int32 { return int32(e ^ 0x80000000) }

// pack combines a version counter and an encoded value into a node word.
func pack(ver uint32, val uint32) uint64 { return uint64(ver)<<32 | uint64(val) }

func unpack(w uint64) (ver uint32, val uint32) { return uint32(w >> 32), uint32(w) }

// Tree is the lock-free baseline Mindicator. Slots (leaves) are assigned to
// threads by the caller; the default mapping used by the benchmarks assigns
// thread i to slot i, left to right, as in the paper.
type Tree struct {
	leaves int
	nodes  []atomic.Uint64
}

// New returns a Mindicator with the given number of leaves, which must be a
// power of two and at least 2.
func New(leaves int) *Tree {
	if leaves < 2 || leaves&(leaves-1) != 0 {
		panic("mindicator: leaves must be a power of two ≥ 2")
	}
	t := &Tree{leaves: leaves, nodes: make([]atomic.Uint64, 2*leaves-1)}
	for i := range t.nodes {
		t.nodes[i].Store(pack(0, infEnc))
	}
	return t
}

// Leaves returns the number of slots.
func (t *Tree) Leaves() int { return t.leaves }

func (t *Tree) leafIndex(slot int) int { return t.leaves - 1 + slot }

// setLeaf installs val at the slot's leaf with a version bump.
func (t *Tree) setLeaf(slot int, val uint32) {
	i := t.leafIndex(slot)
	for {
		old := t.nodes[i].Load()
		ver, _ := unpack(old)
		if t.nodes[i].CompareAndSwap(old, pack(ver+1, val)) {
			return
		}
	}
}

// repair makes node i consistent with its children once, returning whether it
// wrote (changed the value). Used for the optimistic upward pass.
func (t *Tree) repair(i int) bool {
	for {
		lv := func() uint32 { _, v := unpack(t.nodes[2*i+1].Load()); return v }()
		rv := func() uint32 { _, v := unpack(t.nodes[2*i+2].Load()); return v }()
		m := min(lv, rv)
		cur := t.nodes[i].Load()
		ver, val := unpack(cur)
		if val == m {
			return false
		}
		if t.nodes[i].CompareAndSwap(cur, pack(ver+1, m)) {
			return true
		}
	}
}

// validate repairs node i until a fresh read of the children confirms the
// installed value, then bubbles any value it wrote toward the root. The
// upward pass's early stop is sound only under the discipline that every
// installed value is propagated upward by its writer: without the bubbling,
// a validation write could park a concurrent updater's minimum at i while
// that updater early-stops below, trusting i's writer to carry it up — and
// the root would never reflect a settled value.
func (t *Tree) validate(i int) {
	for {
		wrote := false
		for t.repair(i) {
			wrote = true
		}
		if !wrote || i == 0 {
			return
		}
		i = parent(i)
	}
}

// update writes val to the slot's leaf and restores the min-tree invariant
// along the leaf-to-root path: an upward optimistic pass with early stopping,
// then a downward validation pass over the visited ancestors.
func (t *Tree) update(slot int, val uint32) {
	t.setLeaf(slot, val)
	var visited [64]int
	n := 0
	for i := parent(t.leafIndex(slot)); ; i = parent(i) {
		visited[n] = i
		n++
		if !t.repair(i) {
			break
		}
		if i == 0 {
			break
		}
	}
	for k := n - 1; k >= 0; k-- {
		t.validate(visited[k])
	}
}

func parent(i int) int { return (i - 1) / 2 }

// Arrive offers v as the calling thread's value. The thread must have
// departed (or never arrived) before arriving again. v must be < MaxInt32.
func (t *Tree) Arrive(slot int, v int32) { t.update(slot, enc(v)) }

// Depart withdraws the calling thread's value.
func (t *Tree) Depart(slot int) { t.update(slot, infEnc) }

// Query returns the current minimum over arrived values, and false if no
// thread is arrived.
func (t *Tree) Query() (int32, bool) {
	_, val := unpack(t.nodes[0].Load())
	if val == infEnc {
		return 0, false
	}
	return dec(val), true
}

// PTO is the prefix-transaction-accelerated Mindicator: the whole update runs
// as one transaction that coalesces the mark and unmark version bumps into a
// single +2 store per node and performs no downward pass; after the tuned
// number of attempts (three, per §3.1) it falls back to the baseline
// protocol. Query is unchanged.
type PTO struct {
	domain  *htm.Domain
	leaves  int
	nodes   []htm.Var[uint64]
	stats   *core.Stats
	retries int
	site    *speculate.Site
}

// DefaultAttempts is the retry threshold the paper settled on for the
// Mindicator ("a choice of three attempts yielded the best performance").
const DefaultAttempts = 3

// NewPTO returns a PTO-accelerated Mindicator. attempts ≤ 0 selects
// DefaultAttempts.
func NewPTO(leaves, attempts int) *PTO {
	if leaves < 2 || leaves&(leaves-1) != 0 {
		panic("mindicator: leaves must be a power of two ≥ 2")
	}
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	p := &PTO{
		domain:  htm.NewDomain(0, 0),
		leaves:  leaves,
		nodes:   make([]htm.Var[uint64], 2*leaves-1),
		stats:   core.NewStats(1),
		retries: attempts,
	}
	p.WithPolicy(speculate.Fixed(0))
	for i := range p.nodes {
		p.nodes[i].Init(p.domain, pack(0, infEnc))
	}
	return p
}

// WithPolicy replaces the speculation policy governing the update retry
// loop. The default, speculate.Fixed(0), reproduces the historical behavior:
// up to `attempts` tries, then the baseline fallback. Returns p for
// chaining.
func (p *PTO) WithPolicy(pol speculate.Policy) *PTO {
	p.site = pol.NewSite("mindicator/update", p.stats,
		speculate.Level{Name: "pto", Attempts: p.retries})
	return p
}

// Leaves returns the number of slots.
func (p *PTO) Leaves() int { return p.leaves }

// Stats exposes commit/fallback counters for diagnostics and tests.
func (p *PTO) Stats() *core.Stats { return p.stats }

// Domain exposes the transactional domain (for tests).
func (p *PTO) Domain() *htm.Domain { return p.domain }

func (p *PTO) update(slot int, val uint32) {
	leaf := p.leaves - 1 + slot
	r := p.site.Begin(p.domain)
	for r.Next(0) {
		st := r.Try(func(tx *htm.Tx) {
			// Prefix transaction: one pass, one plain store per node, version
			// advanced by two (coalesced mark+unmark), no downward traversal.
			w := htm.Load(tx, &p.nodes[leaf])
			ver, _ := unpack(w)
			htm.Store(tx, &p.nodes[leaf], pack(ver+2, val))
			for i := parent(leaf); ; i = parent(i) {
				_, lv := unpack(htm.Load(tx, &p.nodes[2*i+1]))
				_, rv := unpack(htm.Load(tx, &p.nodes[2*i+2]))
				m := min(lv, rv)
				cur := htm.Load(tx, &p.nodes[i])
				cver, cval := unpack(cur)
				if cval == m {
					break
				}
				htm.Store(tx, &p.nodes[i], pack(cver+2, m))
				if i == 0 {
					break
				}
			}
		})
		if st == htm.Committed {
			return
		}
	}
	r.Fallback()
	p.fallback(slot, val)
}

// fallback is the original baseline protocol expressed over the transactional
// Vars (the fallback path of the prefix transaction transformation).
func (p *PTO) fallback(slot int, val uint32) {
	leaf := p.leaves - 1 + slot
	for {
		old := htm.Load(nil, &p.nodes[leaf])
		ver, _ := unpack(old)
		if htm.CAS(nil, &p.nodes[leaf], old, pack(ver+1, val)) {
			break
		}
	}
	var visited [64]int
	n := 0
	for i := parent(leaf); ; i = parent(i) {
		visited[n] = i
		n++
		if !p.repairVar(i) {
			break
		}
		if i == 0 {
			break
		}
	}
	for k := n - 1; k >= 0; k-- {
		// Settle the node, and bubble any write toward the root — same
		// discipline as Tree.validate: a value installed by the validation
		// pass must be propagated by its writer, or a concurrent updater's
		// early-stopped ascent strands it below the root.
		for i := visited[k]; ; {
			wrote := false
			for p.repairVar(i) {
				wrote = true
			}
			if !wrote || i == 0 {
				break
			}
			i = parent(i)
		}
	}
}

func (p *PTO) repairVar(i int) bool {
	for {
		_, lv := unpack(htm.Load(nil, &p.nodes[2*i+1]))
		_, rv := unpack(htm.Load(nil, &p.nodes[2*i+2]))
		m := min(lv, rv)
		cur := htm.Load(nil, &p.nodes[i])
		ver, val := unpack(cur)
		if val == m {
			return false
		}
		if htm.CAS(nil, &p.nodes[i], cur, pack(ver+1, m)) {
			return true
		}
	}
}

// Arrive offers v as the calling thread's value.
func (p *PTO) Arrive(slot int, v int32) { p.update(slot, enc(v)) }

// Depart withdraws the calling thread's value.
func (p *PTO) Depart(slot int) { p.update(slot, infEnc) }

// Query returns the current minimum over arrived values.
func (p *PTO) Query() (int32, bool) {
	_, val := unpack(htm.Load(nil, &p.nodes[0]))
	if val == infEnc {
		return 0, false
	}
	return dec(val), true
}

// TLE is the comparison point from Figure 2(a): a sequential min-tree
// protected by a single coarse lock, accelerated with transactional lock
// elision. The speculative path verifies the lock is free and runs the
// sequential update inside a transaction; the fallback acquires the lock.
type TLE struct {
	domain  *htm.Domain
	leaves  int
	lock    htm.Var[uint64]
	nodes   []htm.Var[uint64] // sequential representation: encoded values only
	stats   *core.Stats
	retries int
	site    *speculate.Site
}

// NewTLE returns a TLE-protected sequential Mindicator.
func NewTLE(leaves, attempts int) *TLE {
	if leaves < 2 || leaves&(leaves-1) != 0 {
		panic("mindicator: leaves must be a power of two ≥ 2")
	}
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	t := &TLE{
		domain:  htm.NewDomain(0, 0),
		leaves:  leaves,
		nodes:   make([]htm.Var[uint64], 2*leaves-1),
		stats:   core.NewStats(1),
		retries: attempts,
	}
	t.WithPolicy(speculate.Fixed(0))
	t.lock.Init(t.domain, 0)
	for i := range t.nodes {
		t.nodes[i].Init(t.domain, uint64(infEnc))
	}
	return t
}

// WithPolicy replaces the speculation policy governing the elision retry
// loop. The default, speculate.Fixed(0), reproduces the historical behavior:
// up to `attempts` tries — stopping early when the lock is observed held —
// then the lock is acquired. Returns t for chaining.
func (t *TLE) WithPolicy(pol speculate.Policy) *TLE {
	t.site = pol.NewSite("mindicator-tle/update", t.stats,
		speculate.Level{Name: "elide", Attempts: t.retries})
	return t
}

// Stats exposes commit/fallback counters.
func (t *TLE) Stats() *core.Stats { return t.stats }

func (t *TLE) seqUpdate(tx *htm.Tx, slot int, val uint32) {
	i := t.leaves - 1 + slot
	htm.Store(tx, &t.nodes[i], uint64(val))
	for i != 0 {
		i = parent(i)
		l := uint32(htm.Load(tx, &t.nodes[2*i+1]))
		r := uint32(htm.Load(tx, &t.nodes[2*i+2]))
		m := min(l, r)
		if uint32(htm.Load(tx, &t.nodes[i])) == m {
			break
		}
		htm.Store(tx, &t.nodes[i], uint64(m))
	}
}

func (t *TLE) update(slot int, val uint32) {
	r := t.site.Begin(t.domain)
	for r.Next(0) {
		st := r.Try(func(tx *htm.Tx) {
			if htm.Load(tx, &t.lock) != 0 {
				tx.Abort(1) // lock held: elision impossible right now
			}
			t.seqUpdate(tx, slot, val)
		})
		if st == htm.Committed {
			return
		}
	}
	r.Fallback()
	for !htm.CAS(nil, &t.lock, 0, 1) {
	}
	t.seqUpdate(nil, slot, val)
	htm.Store(nil, &t.lock, 0)
}

// Arrive offers v as the calling thread's value.
func (t *TLE) Arrive(slot int, v int32) { t.update(slot, enc(v)) }

// Depart withdraws the calling thread's value.
func (t *TLE) Depart(slot int) { t.update(slot, infEnc) }

// Query returns the current minimum over arrived values.
func (t *TLE) Query() (int32, bool) {
	val := uint32(htm.Load(nil, &t.nodes[0]))
	if val == infEnc {
		return 0, false
	}
	return dec(val), true
}
