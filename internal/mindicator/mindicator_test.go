package mindicator

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// minder abstracts the three variants so the semantic tests run against all.
type minder interface {
	Arrive(slot int, v int32)
	Depart(slot int)
	Query() (int32, bool)
}

func variants(leaves int) map[string]minder {
	return map[string]minder{
		"lockfree": New(leaves),
		"pto":      NewPTO(leaves, 0),
		"tle":      NewTLE(leaves, 0),
	}
}

func TestEmptyQuery(t *testing.T) {
	for name, m := range variants(8) {
		if _, ok := m.Query(); ok {
			t.Errorf("%s: query on empty reported a value", name)
		}
	}
}

func TestSingleArriveDepart(t *testing.T) {
	for name, m := range variants(8) {
		m.Arrive(3, 42)
		if v, ok := m.Query(); !ok || v != 42 {
			t.Errorf("%s: query = %d,%v after arrive(42)", name, v, ok)
		}
		m.Depart(3)
		if _, ok := m.Query(); ok {
			t.Errorf("%s: query non-empty after depart", name)
		}
	}
}

func TestMinOverSlots(t *testing.T) {
	for name, m := range variants(8) {
		m.Arrive(0, 10)
		m.Arrive(1, -5)
		m.Arrive(7, 3)
		if v, ok := m.Query(); !ok || v != -5 {
			t.Errorf("%s: query = %d,%v, want -5", name, v, ok)
		}
		m.Depart(1)
		if v, ok := m.Query(); !ok || v != 3 {
			t.Errorf("%s: query = %d,%v after departing min, want 3", name, v, ok)
		}
		m.Depart(0)
		m.Depart(7)
		if _, ok := m.Query(); ok {
			t.Errorf("%s: query non-empty after all departed", name)
		}
	}
}

func TestNegativeAndDuplicateValues(t *testing.T) {
	for name, m := range variants(4) {
		m.Arrive(0, -100)
		m.Arrive(1, -100)
		m.Depart(0)
		if v, ok := m.Query(); !ok || v != -100 {
			t.Errorf("%s: duplicate min lost on single depart: %d,%v", name, v, ok)
		}
		m.Depart(1)
	}
}

// TestQuickSequentialEquivalence drives all three variants plus a trivial
// model with the same random operation sequence and checks the queries agree.
func TestQuickSequentialEquivalence(t *testing.T) {
	const leaves = 16
	f := func(ops []uint32) bool {
		vs := variants(leaves)
		model := make(map[int]int32)
		for _, op := range ops {
			slot := int(op>>8) % leaves
			v := int32(int8(op)) // small signed values, lots of collisions
			if op&1 == 0 {
				for name, m := range vs {
					_ = name
					m.Arrive(slot, v)
				}
				model[slot] = v
			} else {
				for _, m := range vs {
					m.Depart(slot)
				}
				delete(model, slot)
			}
			wantOK := len(model) > 0
			var want int32
			first := true
			for _, mv := range model {
				if first || mv < want {
					want = mv
					first = false
				}
			}
			for name, m := range vs {
				v, ok := m.Query()
				if ok != wantOK || (ok && v != want) {
					t.Logf("%s: query = %d,%v, want %d,%v", name, v, ok, want, wantOK)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestConcurrentQuiescentConsistency runs concurrent arrive/depart churn and
// checks the root is exactly right at every quiescent point between rounds.
func TestConcurrentQuiescentConsistency(t *testing.T) {
	const leaves = 16
	const rounds = 30
	for name, m := range variants(leaves) {
		m := m
		t.Run(name, func(t *testing.T) {
			for r := 0; r < rounds; r++ {
				values := make([]int32, leaves)
				active := make([]bool, leaves)
				var wg sync.WaitGroup
				for s := 0; s < leaves; s++ {
					wg.Add(1)
					go func(s, r int) {
						defer wg.Done()
						rnd := rand.New(rand.NewSource(int64(s*1000 + r)))
						for i := 0; i < 20; i++ {
							v := int32(rnd.Intn(2000) - 1000)
							m.Arrive(s, v)
							if rnd.Intn(2) == 0 {
								m.Depart(s)
							} else {
								values[s] = v
								active[s] = true
								return
							}
						}
						active[s] = false
					}(s, r)
				}
				wg.Wait()
				wantOK := false
				var want int32
				for s := 0; s < leaves; s++ {
					if active[s] && (!wantOK || values[s] < want) {
						want = values[s]
						wantOK = true
					}
				}
				v, ok := m.Query()
				if ok != wantOK || (ok && v != want) {
					t.Fatalf("round %d: query = %d,%v, want %d,%v", r, v, ok, want, wantOK)
				}
				for s := 0; s < leaves; s++ {
					if active[s] {
						m.Depart(s)
					}
				}
			}
		})
	}
}

// TestSelfVisibility checks the documented visibility property: once
// concurrent repairs settle (a quiescent point), every arrived thread's
// value bounds the root from above. Arrivals race freely; the check happens
// at a barrier, since transient staleness windows during concurrent repair
// are permitted by this variant's semantics (see the package docs).
func TestSelfVisibility(t *testing.T) {
	const leaves = 8
	const rounds = 40
	for name, m := range variants(leaves) {
		m := m
		t.Run(name, func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				values := make([]int32, leaves)
				var wg sync.WaitGroup
				for s := 0; s < leaves; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						rnd := rand.New(rand.NewSource(int64(s*100 + round)))
						// Churn, then leave a final value arrived.
						for i := 0; i < 5; i++ {
							m.Arrive(s, int32(rnd.Intn(1000)))
							m.Depart(s)
							runtime.Gosched()
						}
						values[s] = int32(rnd.Intn(1000))
						m.Arrive(s, values[s])
					}(s)
				}
				wg.Wait()
				for s := 0; s < leaves; s++ {
					got, has := m.Query()
					if !has || got > values[s] {
						t.Fatalf("%s slot %d: settled value %d does not bound root (%d,%v)",
							name, s, values[s], got, has)
					}
				}
				for s := 0; s < leaves; s++ {
					m.Depart(s)
				}
			}
		})
	}
}

func TestPTOFallbackAccounting(t *testing.T) {
	const leaves = 8
	p := NewPTO(leaves, 0)
	const perSlot = 300
	var wg sync.WaitGroup
	for s := 0; s < leaves; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSlot; i++ {
				p.Arrive(s, int32(i))
				p.Depart(s)
			}
		}(s)
	}
	wg.Wait()
	commits, fallbacks, _ := p.Stats().Snapshot()
	total := commits[0] + fallbacks
	if want := uint64(leaves * perSlot * 2); total != want {
		t.Fatalf("commits+fallbacks = %d, want %d", total, want)
	}
	if commits[0] == 0 {
		t.Error("no operation ever committed speculatively")
	}
}

func TestTLEFallbackStillCorrect(t *testing.T) {
	// Zero-attempt TLE is illegal; instead force contention so the lock path
	// runs, and verify the result is still exact.
	tle := NewTLE(8, 1)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tle.Arrive(s, int32(s*1000+i))
				tle.Depart(s)
			}
		}(s)
	}
	wg.Wait()
	if _, ok := tle.Query(); ok {
		t.Fatal("tree non-empty after all departs")
	}
	_, fallbacks, _ := tle.Stats().Snapshot()
	t.Logf("tle fallbacks: %d", fallbacks)
}

func TestInvalidLeafCount(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}
