package mindicator

import (
	"math/rand"
	"sync"
	"testing"
)

// Crushing the transactional read capacity forces the PTO mindicator onto
// its fallback: the original mark-up/validate-down protocol over Vars.

func TestFallbackForced(t *testing.T) {
	p := NewPTO(16, 0)
	p.Domain().SetCapacity(1, 1)
	var wg sync.WaitGroup
	final := make([]int32, 16)
	for s := 0; s < 16; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < 150; i++ {
				p.Arrive(s, int32(rnd.Intn(2000)-1000))
				p.Depart(s)
			}
			final[s] = int32(rnd.Intn(2000) - 1000)
			p.Arrive(s, final[s])
		}(s)
	}
	wg.Wait()
	want := final[0]
	for _, v := range final {
		if v < want {
			want = v
		}
	}
	if got, ok := p.Query(); !ok || got != want {
		t.Fatalf("query = %d,%v, want %d", got, ok, want)
	}
	commits, fallbacks, _ := p.Stats().Snapshot()
	if fallbacks == 0 || fallbacks < commits[0] {
		t.Fatalf("fallbacks did not dominate: commits=%d fallbacks=%d", commits[0], fallbacks)
	}
	for s := 0; s < 16; s++ {
		p.Depart(s)
	}
	if _, ok := p.Query(); ok {
		t.Fatal("non-empty after all departs")
	}
}
