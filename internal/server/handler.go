package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/txn"
)

// maxBodyBytes bounds one request body; a full MaxBatch key list is ~1.5KB,
// so 1MB is generous without letting a client balloon the decoder.
const maxBodyBytes = 1 << 20

// Handler returns the service mux: POST /v1/op (the op envelope),
// POST /v1/txn (a declarative multi-op open transaction), GET /healthz,
// GET /statz. Telemetry exports (/metrics, /debug/vars) are
// mounted by the caller from the server's Registry — the exporters already
// exist in internal/telemetry and are not duplicated here.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/op", s.handleOp)
	mux.HandleFunc("/v1/txn", s.handleTxn)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"shards":%d}`+"\n", len(s.shards))
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Stats())
	})
	return mux
}

// httpError writes a JSON error response with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(Response{OK: false, Shard: -1, Err: fmt.Sprintf(format, args...)})
}

// handleOp decodes one envelope, routes it to its shard(s), applies the
// admission decision, executes, and replies.
func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if len(req.Keys) > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d keys exceeds max %d", len(req.Keys), s.cfg.MaxBatch)
		return
	}
	if req.Shard != nil && (*req.Shard < 0 || *req.Shard >= len(s.shards)) {
		httpError(w, http.StatusBadRequest, "shard %d out of range [0,%d)", *req.Shard, len(s.shards))
		return
	}

	resp, status := s.execute(&req)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// admit applies the admission decision for one op on one shard: mutating
// ops on a shedding shard are rejected. Returns false (and counts the shed)
// when the caller must 429.
func admit(sh *shard, op string) bool {
	if mutates(op) && sh.shedding.Load() {
		sh.sheds.Add(1)
		return false
	}
	return true
}

// shedResponse is the 429 body; Retry-After semantics live in the status
// code choice, the admission interval is the natural retry horizon.
func shedResponse(sh *shard) (Response, int) {
	return Response{OK: false, Shard: sh.id, Err: "shedding: shard commit ratio under admission floor"},
		http.StatusTooManyRequests
}

// execute runs one validated envelope and returns the response + status.
func (s *Server) execute(req *Request) (Response, int) {
	switch req.Op {
	case OpGet:
		sh := s.keyShard(req)
		set := sh.set(req.Struct, DefaultSet)
		if set == nil {
			return unknownStructure(sh, req.Struct)
		}
		found := sh.get(set, req.Key)
		return Response{OK: true, Found: found, Shard: sh.id}, http.StatusOK

	case OpPut, OpDel:
		return s.executeWrite(req)

	case OpEnqueue:
		sh := s.freeShard(req)
		q := sh.queue(req.Struct, DefaultQueue)
		if q == nil {
			return unknownStructure(sh, req.Struct)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		sh.enqueue(q, req.Value)
		return Response{OK: true, Shard: sh.id}, http.StatusOK

	case OpDequeue:
		sh := s.freeShard(req)
		q := sh.queue(req.Struct, DefaultQueue)
		if q == nil {
			return unknownStructure(sh, req.Struct)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		v, ok := sh.dequeue(q)
		return Response{OK: true, Found: ok, Value: v, Shard: sh.id}, http.StatusOK

	case OpPush:
		sh := s.freeShard(req)
		pq := sh.pq(req.Struct, DefaultPQ)
		if pq == nil {
			return unknownStructure(sh, req.Struct)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		sh.push(pq, req.Value)
		return Response{OK: true, Shard: sh.id}, http.StatusOK

	case OpPopMin:
		sh := s.freeShard(req)
		pq := sh.pq(req.Struct, DefaultPQ)
		if pq == nil {
			return unknownStructure(sh, req.Struct)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		v, ok := sh.popMin(pq)
		return Response{OK: true, Found: ok, Value: v, Shard: sh.id}, http.StatusOK

	case OpMove:
		sh := s.keyShard(req)
		src, dst := sh.set(req.Src, DefaultSet), sh.set(req.Dst, DefaultSpill)
		if src == nil {
			return unknownStructure(sh, req.Src)
		}
		if dst == nil {
			return unknownStructure(sh, req.Dst)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		moved := 0
		if txn.Move(sh.m, src, dst, req.Key) {
			moved = 1
		}
		return Response{OK: true, Moved: moved, Shard: sh.id}, http.StatusOK

	case OpMoveAll:
		return s.executeMoveAll(req)

	case OpTransfer:
		sh := s.freeShard(req)
		src, dst := sh.queue(req.Src, DefaultQueue), sh.queue(req.Dst, "egress")
		if src == nil {
			return unknownStructure(sh, req.Src)
		}
		if dst == nil {
			return unknownStructure(sh, req.Dst)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		n := req.N
		if n <= 0 {
			n = 1
		}
		moved := txn.Transfer(sh.m, src, dst, n)
		return Response{OK: true, Moved: moved, Shard: sh.id}, http.StatusOK

	case OpMoveMin:
		sh := s.freeShard(req)
		src, dst := sh.pq(req.Src, DefaultPQ), sh.set(req.Dst, DefaultSpill)
		if src == nil {
			return unknownStructure(sh, req.Src)
		}
		if dst == nil {
			return unknownStructure(sh, req.Dst)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		v, moved := txn.MoveMin(sh.m, src, dst)
		resp := Response{OK: true, Value: v, Found: moved, Shard: sh.id}
		if moved {
			resp.Moved = 1
		}
		return resp, http.StatusOK

	case OpMoveToPQ:
		sh := s.keyShard(req)
		src, dst := sh.set(req.Src, DefaultSet), sh.pq(req.Dst, DefaultPQ)
		if src == nil {
			return unknownStructure(sh, req.Src)
		}
		if dst == nil {
			return unknownStructure(sh, req.Dst)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
		moved := 0
		if txn.MoveToPQ(sh.m, src, dst, req.Key) {
			moved = 1
		}
		return Response{OK: true, Moved: moved, Shard: sh.id}, http.StatusOK

	default:
		return Response{OK: false, Shard: -1, Err: fmt.Sprintf("unknown op %q", req.Op)},
			http.StatusBadRequest
	}
}

// executeWrite handles put/del: single-key direct, single-key through the
// epoch batcher (Batch), or multi-key as one publication per owning shard.
func (s *Server) executeWrite(req *Request) (Response, int) {
	insert := req.Op == OpPut
	if len(req.Keys) > 0 {
		// Multi-key: group by owning shard, one composed publication each —
		// the client-side face of the batched-amortization claim.
		groups := s.groupByShard(req.Keys)
		for sh := range groups {
			if sh.set(req.Struct, DefaultSet) == nil {
				return unknownStructure(sh, req.Struct)
			}
			if !admit(sh, req.Op) {
				return shedResponse(sh)
			}
		}
		changed := 0
		for sh, keys := range groups {
			set := sh.set(req.Struct, DefaultSet)
			if insert {
				changed += sh.putAll(set, keys)
			} else {
				changed += delAll(sh, set, keys)
			}
		}
		return Response{OK: true, Moved: changed, Changed: changed > 0, Shard: -1, Batched: true},
			http.StatusOK
	}

	sh := s.keyShard(req)
	set := sh.set(req.Struct, DefaultSet)
	if set == nil {
		return unknownStructure(sh, req.Struct)
	}
	if !admit(sh, req.Op) {
		return shedResponse(sh)
	}
	if req.Batch {
		// Ride the shard's epoch: the reply comes when the batch commits.
		if ch := sh.b.submit(insert, set, req.Key); ch != nil {
			return Response{OK: true, Changed: <-ch, Shard: sh.id, Batched: true}, http.StatusOK
		}
		// Batcher draining for shutdown: fall through to the direct path.
	}
	var changed bool
	if insert {
		changed = sh.put(set, req.Key)
	} else {
		changed = sh.del(set, req.Key)
	}
	return Response{OK: true, Changed: changed, Shard: sh.id}, http.StatusOK
}

// executeMoveAll groups the key list by owning shard and runs one batched
// MoveAll publication per shard.
func (s *Server) executeMoveAll(req *Request) (Response, int) {
	if len(req.Keys) == 0 {
		return Response{OK: true, Moved: 0, Shard: -1}, http.StatusOK
	}
	groups := s.groupByShard(req.Keys)
	for sh := range groups {
		if sh.set(req.Src, DefaultSet) == nil {
			return unknownStructure(sh, req.Src)
		}
		if sh.set(req.Dst, DefaultSpill) == nil {
			return unknownStructure(sh, req.Dst)
		}
		if !admit(sh, req.Op) {
			return shedResponse(sh)
		}
	}
	moved := 0
	for sh, keys := range groups {
		moved += txn.MoveAll(sh.m, sh.set(req.Src, DefaultSet), sh.set(req.Dst, DefaultSpill), keys...)
	}
	return Response{OK: true, Moved: moved, Shard: -1, Batched: true}, http.StatusOK
}

// delAll removes every key in one composed publication, returning how many
// were present.
func delAll(sh *shard, set txn.Set, keys []int64) int {
	var n int
	sh.m.Atomic(func(c *txn.Ctx) {
		n = 0
		for _, k := range keys {
			if set.TxRemove(c, k) {
				n++
			}
		}
	})
	return n
}

// keyShard resolves the shard of a keyed op (explicit pin wins).
func (s *Server) keyShard(req *Request) *shard {
	if req.Shard != nil {
		return s.shards[*req.Shard]
	}
	return s.shardFor(req.Key)
}

// freeShard resolves the shard of a keyless op: pinned, else rotating.
func (s *Server) freeShard(req *Request) *shard {
	if req.Shard != nil {
		return s.shards[*req.Shard]
	}
	return s.nextShard()
}

// groupByShard partitions keys by owning shard, preserving order within a
// shard.
func (s *Server) groupByShard(keys []int64) map[*shard][]int64 {
	groups := make(map[*shard][]int64, len(s.shards))
	for _, k := range keys {
		sh := s.shardFor(k)
		groups[sh] = append(groups[sh], k)
	}
	return groups
}

// unknownStructure is the 404 for a name the shard's registry doesn't hold.
func unknownStructure(sh *shard, name string) (Response, int) {
	return Response{OK: false, Shard: sh.id, Err: fmt.Sprintf("unknown structure %q", name)},
		http.StatusNotFound
}
