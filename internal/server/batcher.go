package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/txn"
)

// batcher is the shard's epoch-batched commit pipeline, in the style of
// Silo's group commit: single-key set writes arriving within one epoch
// window coalesce into a single composed publication — one prefix
// transaction on the fast path, one N-word MultiCAS in the fallback — so k
// concurrent puts pay one commit instead of k. This is MoveAll's
// amortization (one publication per k keys, pinned by
// bench.BatchedMoveAmortization) lifted onto the request path; the
// deterministic twin test in batcher_test.go pins the same claim at this
// layer with a fake clock.
//
// The epoch advances on a ticker (the window), and early whenever the
// pending queue reaches maxBatch — so a burst never waits out the window
// and a batch never exceeds the size the substrate was tuned for. Requests
// block on a per-op reply channel until the batch holding them commits;
// because txn.Atomic retries until it commits, every submitted op
// eventually resolves, and close() drains whatever is pending before the
// goroutine exits (the graceful-shutdown guarantee).
type batcher struct {
	sh *shard
	// maxBatch is atomic because the tune controller steers it online (law
	// B: AIMD on the abort mix) while submitters and the flusher read it.
	// staticMax is the configured value — the ceiling for SetBatchK.
	maxBatch  atomic.Int64
	staticMax int

	mu      sync.Mutex
	pending []batchOp
	closed  bool // no further submits; pending is drained by close

	tick   <-chan time.Time // epoch source: ticker.C, or injected by tests
	ticker *time.Ticker     // nil when tick was injected
	kick   chan struct{}    // early flush: pending reached maxBatch
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once

	// Stats: how many batches committed, how many ops rode them, and the
	// batch-size distribution (the width histogram the composition layer
	// already uses for MCAS footprints).
	batches    atomic.Uint64
	batchedOps atomic.Uint64
	sizes      telemetry.WidthHistogram
}

// batchOp is one queued single-key write. done is buffered: the flusher
// never blocks on a slow reader.
type batchOp struct {
	insert bool // true: TxInsert; false: TxRemove
	set    txn.Set
	key    int64
	done   chan bool
}

// newBatcher starts the shard's epoch loop. window is the epoch length;
// maxBatch caps one publication's op count. tick, when non-nil, replaces
// the wall-clock ticker — the fake clock of the deterministic tests.
func newBatcher(sh *shard, window time.Duration, maxBatch int, tick <-chan time.Time) *batcher {
	b := &batcher{
		sh:        sh,
		staticMax: maxBatch,
		tick:      tick,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	b.maxBatch.Store(int64(maxBatch))
	if b.tick == nil {
		b.ticker = time.NewTicker(window)
		b.tick = b.ticker.C
	}
	go b.run()
	return b
}

// submit queues one single-key write for the current epoch and returns the
// channel its result (membership changed?) arrives on after the batch
// commits. A nil return means the batcher is draining for shutdown and the
// caller must execute the op directly — every op appended before the drain
// flag is set is guaranteed to be flushed by close.
func (b *batcher) submit(insert bool, set txn.Set, key int64) <-chan bool {
	op := batchOp{insert: insert, set: set, key: key, done: make(chan bool, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.pending = append(b.pending, op)
	full := len(b.pending) >= b.BatchK()
	b.mu.Unlock()
	if full {
		select {
		case b.kick <- struct{}{}:
		default: // a kick is already queued; one flush drains everything
		}
	}
	return op.done
}

// pendingLen reports the current epoch's queued op count (tests, stats).
func (b *batcher) pendingLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// run is the epoch loop: flush on every tick, on every early kick, and one
// final time on stop so no submitted op is left unresolved.
func (b *batcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			b.flush()
			return
		case <-b.tick:
			b.flush()
		case <-b.kick:
			b.flush()
		}
	}
}

// flush publishes everything pending, in submission order, in chunks of at
// most maxBatch ops — each chunk ONE composed atomic operation.
func (b *batcher) flush() {
	b.mu.Lock()
	ops := b.pending
	b.pending = nil
	b.mu.Unlock()
	for len(ops) > 0 {
		n := len(ops)
		if k := b.BatchK(); n > k {
			n = k
		}
		b.commit(ops[:n])
		ops = ops[n:]
	}
}

// BatchK returns the current epoch chunk size (tune.BatchSetter).
func (b *batcher) BatchK() int { return int(b.maxBatch.Load()) }

// SetBatchK steers the chunk size online, clamped to [1, configured
// MaxBatch] so the controller can never push a chunk past the size the
// substrate was provisioned for (tune.BatchSetter).
func (b *batcher) SetBatchK(n int) int {
	if n < 1 {
		n = 1
	}
	if n > b.staticMax {
		n = b.staticMax
	}
	b.maxBatch.Store(int64(n))
	return n
}

// commit runs one chunk as a single composed operation and resolves every
// op's reply. The body is restartable (txn.Atomic may re-run it on aborts):
// results are fully rewritten on every attempt and delivered only after the
// commit.
func (b *batcher) commit(ops []batchOp) {
	results := make([]bool, len(ops))
	b.sh.m.Atomic(func(c *txn.Ctx) {
		for i, op := range ops {
			if op.insert {
				results[i] = op.set.TxInsert(c, op.key)
			} else {
				results[i] = op.set.TxRemove(c, op.key)
			}
		}
	})
	b.batches.Add(1)
	b.batchedOps.Add(uint64(len(ops)))
	b.sizes.Observe(len(ops))
	for i, op := range ops {
		op.done <- results[i]
	}
}

// close stops the epoch loop, drains pending ops, and waits for the
// goroutine to exit. Safe to call more than once. Setting closed under the
// mutex before signalling stop orders every successful submit before the
// final flush, so no op is ever left unresolved.
func (b *batcher) close() {
	b.once.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		if b.ticker != nil {
			b.ticker.Stop()
		}
		close(b.stop)
	})
	<-b.done
}
