package server

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestCrossShardConservation hammers the full op surface — single-key and
// batched writes, cross-structure moves, queue transfers, PQ scheduling —
// across shards through the HTTP API, then verifies total element counts
// against a sequential model built from the responses. Every composed
// operation reports exactly what it did (Changed/Moved/Found), so summing
// those results must reproduce the final state: for the sets,
// seeded + puts − dels ± pq exchanges; for the queues, enqueues − dequeues;
// for the PQs, pushes + movetopq − movemin − popmins. Any torn composed op,
// double-applied batch entry, or mis-routed key breaks one of the three.
func TestCrossShardConservation(t *testing.T) {
	const (
		shards  = 3
		keys    = 96
		workers = 6
		opsPer  = 120
	)
	srv, ts := newTestServer(t, Config{Shards: shards, MaxBatch: 16})

	// Seed every key into the hot sets via multi-key puts.
	var seeded int64
	for lo := 0; lo < keys; lo += 16 {
		hi := lo + 16
		if hi > keys {
			hi = keys
		}
		ks := make([]int64, 0, 16)
		for k := lo; k < hi; k++ {
			ks = append(ks, int64(k))
		}
		resp, code := doOp(t, ts, Request{Op: OpPut, Keys: ks})
		if code != 200 {
			t.Fatalf("seed put: status %d", code)
		}
		seeded += int64(resp.Moved)
	}
	if seeded != keys {
		t.Fatalf("seeded %d keys, want %d", seeded, keys)
	}

	// Deltas relative to the seed, accumulated from op results.
	var setDelta, qDelta, pqDelta atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := uint64(g)*0x9E3779B97F4A7C15 + 12345
			next := func() uint64 {
				rnd ^= rnd << 13
				rnd ^= rnd >> 7
				rnd ^= rnd << 17
				return rnd
			}
			for i := 0; i < opsPer; i++ {
				x := next()
				k := int64(x >> 16 % keys)
				pin := int(x >> 8 % shards)
				fwd := x&(1<<40) != 0
				switch x % 10 {
				case 0, 1: // single-key move, both directions
					req := Request{Op: OpMove, Key: k}
					if !fwd {
						req.Src, req.Dst = DefaultSpill, DefaultSet
					}
					doOp(t, ts, req)
				case 2: // batched moveall
					ks := []int64{k, (k + 17) % keys, (k + 41) % keys}
					req := Request{Op: OpMoveAll, Keys: ks}
					if !fwd {
						req.Src, req.Dst = DefaultSpill, DefaultSet
					}
					doOp(t, ts, req)
				case 3: // put: direct or via the epoch batcher
					resp, _ := doOp(t, ts, Request{Op: OpPut, Key: k, Batch: fwd})
					if resp.Changed {
						setDelta.Add(1)
					}
				case 4: // multi-key put (one publication per shard)
					ks := []int64{k, (k + 5) % keys, (k + 23) % keys}
					resp, _ := doOp(t, ts, Request{Op: OpPut, Keys: ks})
					setDelta.Add(int64(resp.Moved))
				case 5: // del, batched half the time
					resp, _ := doOp(t, ts, Request{Op: OpDel, Key: k, Batch: fwd})
					if resp.Changed {
						setDelta.Add(-1)
					}
				case 6: // enqueue / dequeue on a pinned shard
					if fwd {
						resp, _ := doOp(t, ts, Request{Op: OpEnqueue, Value: k, Shard: &pin})
						if resp.OK {
							qDelta.Add(1)
						}
					} else {
						st := DefaultQueue
						if x&(1<<41) != 0 {
							st = "egress"
						}
						resp, _ := doOp(t, ts, Request{Op: OpDequeue, Struct: st, Shard: &pin})
						if resp.Found {
							qDelta.Add(-1)
						}
					}
				case 7: // transfer conserves the pair
					doOp(t, ts, Request{Op: OpTransfer, N: 2, Shard: &pin})
				case 8: // push / popmin
					if fwd {
						resp, _ := doOp(t, ts, Request{Op: OpPush, Value: k, Shard: &pin})
						if resp.OK {
							pqDelta.Add(1)
						}
					} else {
						resp, _ := doOp(t, ts, Request{Op: OpPopMin, Shard: &pin})
						if resp.Found {
							pqDelta.Add(-1)
						}
					}
				case 9: // pq <-> set exchanges
					if fwd {
						resp, _ := doOp(t, ts, Request{Op: OpMoveToPQ, Key: k, Shard: &pin})
						if resp.Moved == 1 {
							setDelta.Add(-1)
							pqDelta.Add(1)
						}
					} else {
						resp, _ := doOp(t, ts, Request{Op: OpMoveMin, Shard: &pin})
						if resp.Moved == 1 {
							pqDelta.Add(-1)
							setDelta.Add(1)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiescent count: scan every shard for every key on both sets. Keys
	// normally live on their hash-owner shard, but movemin lands popped
	// values on the pinned shard's cold set, so the scan covers the full
	// (shard × key) plane.
	var total int64
	for sh := 0; sh < shards; sh++ {
		pin := sh
		for k := int64(0); k < keys; k++ {
			for _, st := range []string{DefaultSet, DefaultSpill} {
				resp, code := doOp(t, ts, Request{Op: OpGet, Struct: st, Key: k, Shard: &pin})
				if code != 200 {
					t.Fatalf("scan get: status %d", code)
				}
				if resp.Found {
					total++
				}
			}
		}
	}
	wantSets := seeded + setDelta.Load()
	if total != wantSets {
		t.Errorf("set conservation: counted %d elements, model says %d (seed %d, delta %d)",
			total, wantSets, seeded, setDelta.Load())
	}

	// Drain the queues: remaining values must equal the enqueue/dequeue
	// balance (transfers conserve).
	var qRemaining int64
	for sh := 0; sh < shards; sh++ {
		pin := sh
		for _, st := range []string{DefaultQueue, "egress"} {
			for {
				resp, _ := doOp(t, ts, Request{Op: OpDequeue, Struct: st, Shard: &pin})
				if !resp.Found {
					break
				}
				qRemaining++
			}
		}
	}
	if qRemaining != qDelta.Load() {
		t.Errorf("queue conservation: drained %d values, model says %d", qRemaining, qDelta.Load())
	}

	// Drain the PQs likewise.
	var pqRemaining int64
	for sh := 0; sh < shards; sh++ {
		pin := sh
		for {
			resp, _ := doOp(t, ts, Request{Op: OpPopMin, Shard: &pin})
			if !resp.Found {
				break
			}
			pqRemaining++
		}
	}
	if pqRemaining != pqDelta.Load() {
		t.Errorf("pq conservation: drained %d values, model says %d", pqRemaining, pqDelta.Load())
	}

	// The epoch batcher must actually have coalesced something: the Batch
	// puts/dels above rode it.
	if srv.Stats().Batches == 0 {
		t.Error("no batches committed; the Batch=true writes never rode the epoch batcher")
	}
}
