package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/speculate"
	"repro/internal/telemetry"
	"repro/internal/tune"
)

// Defaults for Config's zero values.
const (
	DefaultShards       = 4
	DefaultEpoch        = 500 * time.Microsecond
	DefaultMaxBatch     = 64
	DefaultAdmitFloor   = 0.2 // mirrors speculate.DefaultMinCommitRatio
	DefaultAdmitMin     = 32
	DefaultAdmitEvery   = 100 * time.Millisecond
	DefaultTuneInterval = 50 * time.Millisecond
)

// Config parameterizes a Server. The zero value is a working 4-shard
// server with the substrate defaults.
type Config struct {
	// Shards is the shard count; keys spread across shards by hash, and
	// each shard owns its own htm domain, manager, and structures.
	Shards int
	// Stripes is each shard domain's ownership-record stripe count (0
	// selects the htm default, 256).
	Stripes int
	// Policy is the speculation policy of every shard's manager (e.g.
	// speculate.Adaptive()); its Metrics field is overwritten with the
	// server's registry.
	Policy speculate.Policy
	// Attempts is the composed fast-path budget (0 = txn.DefaultAttempts).
	Attempts int
	// ReadCap/WriteCap retune every shard domain's transactional capacity;
	// 0 keeps the defaults, negative forces the MultiCAS fallback.
	ReadCap, WriteCap int

	// Epoch is the batcher's commit window; MaxBatch caps one publication's
	// op count and is also the per-request key-list limit.
	Epoch    time.Duration
	MaxBatch int

	// AdmitFloor is the live commit ratio below which a shard sheds
	// mutating requests; AdmitMinAttempts is the evidence threshold (an
	// interval with fewer attempts never sheds); AdmitInterval is the
	// evaluation period. AdmitInterval < 0 disables the background
	// evaluator (tests drive it directly).
	AdmitFloor       float64
	AdmitMinAttempts int
	AdmitInterval    time.Duration

	// TuneInterval is each shard's self-tuning controller cadence (stripe
	// remapping, batch-size AIMD, speculation-budget retuning; see
	// internal/tune). Zero selects DefaultTuneInterval; negative disables
	// the background controllers — they are still constructed, so tests
	// drive Step on their own clock and /statz still reports their state.
	TuneInterval time.Duration

	// Registry receives every shard's telemetry (nil: a fresh registry).
	// Expose it with telemetry's existing expvar/Prometheus exporters.
	Registry *telemetry.Registry

	// batchTick, when non-nil, replaces every shard batcher's wall-clock
	// epoch ticker — the deterministic tests' fake clock.
	batchTick <-chan time.Time
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.Epoch <= 0 {
		c.Epoch = DefaultEpoch
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.AdmitFloor <= 0 {
		c.AdmitFloor = DefaultAdmitFloor
	}
	if c.AdmitMinAttempts <= 0 {
		c.AdmitMinAttempts = DefaultAdmitMin
	}
	if c.AdmitInterval == 0 {
		c.AdmitInterval = DefaultAdmitEvery
	}
	if c.TuneInterval == 0 {
		c.TuneInterval = DefaultTuneInterval
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// Server is the sharded front-end: N shards, their batchers, and the
// admission controller. Construct with New, serve Handler, stop with
// Close.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	shards []*shard
	adm    *admission
	rr     atomic.Uint64 // rotates keyless ops across shards
	once   sync.Once
}

// New builds and starts a server (batcher goroutines and the admission
// evaluator begin immediately; the HTTP listener is the caller's).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, reg: cfg.Registry}
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, cfg, s.reg)
		sh.b = newBatcher(sh, cfg.Epoch, cfg.MaxBatch, cfg.batchTick)
		// One self-tuning controller per shard, steering the shard's own
		// stripe table, its batcher's chunk size, and its speculation
		// site's budgets from the shard's own telemetry deltas. The
		// domain's configured stripe count is the shrink floor: the
		// controller grows past it under alias pressure and returns to it
		// after sustained calm, never below provisioned capacity.
		sh.tuner = tune.New(tune.Config{
			Registry:   s.reg,
			SitePrefix: siteName(i),
			Interval:   cfg.TuneInterval,
			Domain:     sh.m.Domain(),
			MinStripes: sh.m.Domain().Stripes(),
			Batch:      sh.b,
			MaxBatch:   cfg.MaxBatch,
			Budgets:    sh.m.Site().Actuator(),
		})
		sh.tuner.Start()
		s.shards = append(s.shards, sh)
	}
	s.adm = newAdmission(s.shards, cfg.AdmitFloor, cfg.AdmitMinAttempts, cfg.AdmitInterval)
	return s
}

// Registry returns the telemetry registry every shard records into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Close drains and stops the server's background work: every batcher
// flushes its pending epoch (no submitted op is dropped) and the admission
// evaluator halts. Stop the HTTP listener before calling Close so no new
// request can race the drain. Safe to call more than once.
func (s *Server) Close() {
	s.once.Do(func() {
		// Tuners stop first so no stripe remap or batch retune lands while
		// the batchers drain their final epochs.
		for _, sh := range s.shards {
			sh.tuner.Stop()
		}
		for _, sh := range s.shards {
			sh.b.close()
		}
		s.adm.close()
	})
}

// shardFor routes a key to its owning shard (Fibonacci hash, like the
// stripe table's Var mapping — adjacent keys spread apart).
func (s *Server) shardFor(key int64) *shard {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return s.shards[(h>>32)%uint64(len(s.shards))]
}

// nextShard rotates keyless ops (dequeue, popmin, transfer) across shards.
func (s *Server) nextShard() *shard {
	return s.shards[s.rr.Add(1)%uint64(len(s.shards))]
}

// ShardStats is one shard's externally visible state: admission, commit
// pipeline, and batcher counters.
type ShardStats struct {
	Shard       int     `json:"shard"`
	Shedding    bool    `json:"shedding"`
	Sheds       uint64  `json:"sheds"`
	CommitRatio float64 `json:"commit_ratio"`

	// Publications counts completed composed operations — each one prefix
	// transaction or one MultiCAS, however many keys it carried.
	Publications    uint64 `json:"publications"`
	FastCommits     uint64 `json:"fast_commits"`
	FallbackCommits uint64 `json:"fallback_commits"`

	Batches    uint64                           `json:"batches"`
	BatchedOps uint64                           `json:"batched_ops"`
	BatchSizes telemetry.WidthHistogramSnapshot `json:"batch_sizes"`

	// Tune is the shard's self-tuning controller state: current stripe
	// count and batch k, effective speculation budgets, and how many
	// actuations each control law has fired.
	Tune tune.Snapshot `json:"tune"`

	// Open-transaction counters (/v1/txn): committed transactions, commits
	// retried after a semantic validation mismatch, and bodies that aborted
	// (assert mismatches and restriction violations).
	OpenTxns       uint64 `json:"open_txns"`
	OpenRetries    uint64 `json:"open_retries"`
	OpenUserAborts uint64 `json:"open_user_aborts"`
}

// Stats is the /statz payload: per-shard detail plus the totals the load
// generator deltas between phases.
type Stats struct {
	// Structures lists the structure names every shard's registry holds, in
	// sorted order — deterministic output however the registry iterates.
	Structures   []string     `json:"structures"`
	Shards       []ShardStats `json:"shards"`
	Sheds        uint64       `json:"total_sheds"`
	Publications uint64       `json:"total_publications"`
	Batches      uint64       `json:"total_batches"`
	BatchedOps   uint64       `json:"total_batched_ops"`
	OpenTxns     uint64       `json:"total_open_txns"`
	TuneActions  uint64       `json:"total_tune_actions"`
}

// Stats snapshots every shard.
func (s *Server) Stats() Stats {
	var out Stats
	r := s.shards[0].m.Structures()
	out.Structures = append(out.Structures, r.SetNames()...)
	out.Structures = append(out.Structures, r.QueueNames()...)
	out.Structures = append(out.Structures, r.PQNames()...)
	sort.Strings(out.Structures)
	for _, sh := range s.shards {
		comp := sh.composedSnapshot()
		open := sh.open.Snapshot()
		st := ShardStats{
			Shard:           sh.id,
			Shedding:        sh.shedding.Load(),
			Sheds:           sh.sheds.Load(),
			CommitRatio:     sh.lastRatio(),
			Publications:    comp.Ops,
			FastCommits:     comp.FastCommits,
			FallbackCommits: comp.FallbackCommits,
			Batches:         sh.b.batches.Load(),
			BatchedOps:      sh.b.batchedOps.Load(),
			BatchSizes:      sh.b.sizes.Snapshot(),
			Tune:            sh.tuner.Snapshot(),
			OpenTxns:        open.Txns,
			OpenRetries:     open.SemRetries,
			OpenUserAborts:  open.UserAborts,
		}
		out.Shards = append(out.Shards, st)
		out.Sheds += st.Sheds
		out.Publications += st.Publications
		out.Batches += st.Batches
		out.BatchedOps += st.BatchedOps
		out.OpenTxns += st.OpenTxns
		out.TuneActions += st.Tune.Actions
	}
	return out
}
