package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

// doTxn posts one declarative transaction and decodes the reply.
func doTxn(t *testing.T, ts *httptest.Server, req TxnRequest) (TxnResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hr, err := http.Post(ts.URL+"/v1/txn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer hr.Body.Close()
	var resp TxnResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, hr.StatusCode
}

func boolp(b bool) *bool { return &b }

func TestTxnMultiOpCommit(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	pin := 0
	// One transaction: claim key 5 (must be absent), move value 5 into the
	// queue and the scheduler, all-or-nothing.
	resp, code := doTxn(t, ts, TxnRequest{Shard: &pin, Ops: []TxnOp{
		{Op: OpGet, Key: 5, Assert: boolp(false)},
		{Op: OpPut, Key: 5},
		{Op: OpEnqueue, Value: 5},
		{Op: OpPush, Value: 5},
	}})
	if code != http.StatusOK || !resp.OK {
		t.Fatalf("txn: got %d %+v", code, resp)
	}
	if len(resp.Results) != 4 || resp.Results[0].Found || !resp.Results[1].Changed {
		t.Fatalf("results: %+v", resp.Results)
	}
	// The writes are visible: key present, queue and PQ serve the value.
	resp, _ = doTxn(t, ts, TxnRequest{Shard: &pin, Ops: []TxnOp{
		{Op: OpGet, Key: 5},
		{Op: OpDequeue},
		{Op: OpPopMin},
	}})
	if !resp.OK || !resp.Results[0].Found ||
		!resp.Results[1].Found || resp.Results[1].Value != 5 ||
		!resp.Results[2].Found || resp.Results[2].Value != 5 {
		t.Fatalf("visibility txn: %+v", resp)
	}
}

func TestTxnOwnWritesAndBuffering(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	// A body sees its own buffered effects: the put is visible to the later
	// get, the enqueue feeds the dequeue on an empty queue, the pushed value
	// feeds popmin on an empty mound.
	resp, code := doTxn(t, ts, TxnRequest{Ops: []TxnOp{
		{Op: OpPut, Key: 77, Assert: boolp(true)},
		{Op: OpGet, Key: 77, Assert: boolp(true)},
		{Op: OpEnqueue, Struct: "egress", Value: 9},
		{Op: OpDequeue, Struct: "egress", Assert: boolp(true)},
		{Op: OpPush, Value: 3},
		{Op: OpPopMin, Assert: boolp(true)},
	}})
	if code != http.StatusOK || !resp.OK {
		t.Fatalf("txn: got %d %+v", code, resp)
	}
	if resp.Results[3].Value != 9 || resp.Results[5].Value != 3 {
		t.Fatalf("buffered serves: %+v", resp.Results)
	}
}

func TestTxnAssertMismatchIs409AndPublishesNothing(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	pin := 1
	resp, code := doTxn(t, ts, TxnRequest{Shard: &pin, Ops: []TxnOp{
		{Op: OpPut, Key: 50},
		{Op: OpGet, Key: 51, Assert: boolp(true)}, // 51 was never inserted
	}})
	if code != http.StatusConflict || resp.OK {
		t.Fatalf("assert mismatch: got %d %+v, want 409", code, resp)
	}
	if resp.FailedOp == nil || *resp.FailedOp != 1 {
		t.Fatalf("failed_op: %+v", resp)
	}
	// The aborted body's put must not have published.
	if r, _ := doOp(t, ts, Request{Op: OpGet, Key: 50, Shard: &pin}); r.Found {
		t.Fatal("aborted txn published its put")
	}
}

func TestTxnRestrictionViolationIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	doOp(t, ts, Request{Op: OpPush, Value: 1})
	doOp(t, ts, Request{Op: OpPush, Value: 2})
	// Two structural pops of one PQ in a single body is the subsystem's
	// documented restriction.
	resp, code := doTxn(t, ts, TxnRequest{Ops: []TxnOp{
		{Op: OpPopMin},
		{Op: OpPopMin},
	}})
	if code != http.StatusBadRequest || resp.OK {
		t.Fatalf("double popmin: got %d %+v, want 400", code, resp)
	}
	if !strings.Contains(resp.Err, "violation") {
		t.Fatalf("error %q does not mention the violation", resp.Err)
	}
}

func TestTxnRejectsBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxBatch: 4})
	if _, code := doTxn(t, ts, TxnRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty txn: got %d, want 400", code)
	}
	if _, code := doTxn(t, ts, TxnRequest{Ops: []TxnOp{
		{Op: OpGet, Key: 1}, {Op: OpGet, Key: 2}, {Op: OpGet, Key: 3},
		{Op: OpGet, Key: 4}, {Op: OpGet, Key: 5},
	}}); code != http.StatusBadRequest {
		t.Errorf("oversized txn: got %d, want 400", code)
	}
	if _, code := doTxn(t, ts, TxnRequest{Ops: []TxnOp{{Op: OpMove, Key: 1}}}); code != http.StatusBadRequest {
		t.Errorf("cross-structure op in txn: got %d, want 400", code)
	}
	resp, code := doTxn(t, ts, TxnRequest{Ops: []TxnOp{{Op: OpGet, Struct: "nope", Key: 1}}})
	if code != http.StatusNotFound || !strings.Contains(resp.Err, "nope") {
		t.Errorf("unknown structure in txn: got %d %+v, want 404", code, resp)
	}
	bad := 9
	if _, code := doTxn(t, ts, TxnRequest{Shard: &bad, Ops: []TxnOp{{Op: OpGet, Key: 1}}}); code != http.StatusBadRequest {
		t.Errorf("out-of-range shard: got %d, want 400", code)
	}
	hr, err := http.Get(ts.URL + "/v1/txn")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/txn: got %d, want 405", hr.StatusCode)
	}
}

func TestTxnRoutesByFirstKeyedOp(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 4})
	// Unpinned: the transaction lands on the shard that owns its first
	// keyed op's key, so the single-op path sees its writes.
	resp, _ := doTxn(t, ts, TxnRequest{Ops: []TxnOp{
		{Op: OpPut, Key: 123},
		{Op: OpEnqueue, Value: 7},
	}})
	want := srv.shardFor(123).id
	if !resp.OK || resp.Shard != want {
		t.Fatalf("txn landed on shard %d, want %d", resp.Shard, want)
	}
	if r, _ := doOp(t, ts, Request{Op: OpGet, Key: 123}); !r.Found {
		t.Fatal("put not visible on the key's own shard")
	}
}

func TestTxnCountersAndStatzStructures(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	pin := 0
	doTxn(t, ts, TxnRequest{Shard: &pin, Ops: []TxnOp{{Op: OpPut, Key: 1}}})
	doTxn(t, ts, TxnRequest{Shard: &pin, Ops: []TxnOp{
		{Op: OpGet, Key: 1, Assert: boolp(false)}, // fails: 1 is present
	}})
	hr, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	defer hr.Body.Close()
	var st Stats
	if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	if st.OpenTxns == 0 || st.Shards[0].OpenTxns == 0 || st.Shards[0].OpenUserAborts == 0 {
		t.Fatalf("open-txn counters not exported: %+v", st.Shards[0])
	}
	if !sort.StringsAreSorted(st.Structures) || len(st.Structures) != 5 {
		t.Fatalf("statz structures not a sorted 5-name list: %v", st.Structures)
	}
}
