package server

import (
	"testing"
	"time"
)

// TestBatcherCoalescesEpochDeterministic pins the amortization claim at the
// server layer, mirroring bench.BatchedMoveAmortization one level up: k
// single-key puts arriving within one epoch window commit as ONE composed
// publication. The epoch clock is a channel the test owns, so nothing here
// depends on timing — ops are provably pending before the tick and provably
// committed after it.
func TestBatcherCoalescesEpochDeterministic(t *testing.T) {
	tick := make(chan time.Time)
	srv := New(Config{Shards: 1, AdmitInterval: -1, batchTick: tick})
	defer srv.Close()
	sh := srv.shards[0]
	set := sh.set("", DefaultSet)

	const k = 8
	before := sh.composedSnapshot().Ops
	chans := make([]<-chan bool, k)
	for i := 0; i < k; i++ {
		chans[i] = sh.b.submit(true, set, int64(i))
	}
	if n := sh.b.pendingLen(); n != k {
		t.Fatalf("pending = %d, want %d", n, k)
	}
	select {
	case <-chans[0]:
		t.Fatal("batched put committed before its epoch ticked")
	case <-time.After(50 * time.Millisecond):
	}

	tick <- time.Time{} // advance the epoch
	for i, ch := range chans {
		if !<-ch {
			t.Errorf("put %d reported unchanged, want newly inserted", i)
		}
	}
	if pubs := sh.composedSnapshot().Ops - before; pubs != 1 {
		t.Fatalf("%d coalesced puts took %d publications, want 1", k, pubs)
	}
	if b, ops := sh.b.batches.Load(), sh.b.batchedOps.Load(); b != 1 || ops != k {
		t.Fatalf("batches=%d batchedOps=%d, want 1/%d", b, ops, k)
	}
	if hist := sh.b.sizes.Snapshot(); hist.Buckets[k-1] != 1 {
		t.Fatalf("batch-size histogram %v missing the size-%d batch", hist.Buckets, k)
	}

	// The contrast arm: the same k keys put directly cost k publications.
	before = sh.composedSnapshot().Ops
	for i := 0; i < k; i++ {
		sh.put(set, int64(100+i))
	}
	if pubs := sh.composedSnapshot().Ops - before; pubs != k {
		t.Fatalf("%d unbatched puts took %d publications, want %d", k, pubs, k)
	}
}

// TestBatcherMaxBatchFlushesEarly: a full batch does not wait out the epoch
// window — reaching MaxBatch kicks an immediate flush, and the chunking
// caps every publication at MaxBatch ops.
func TestBatcherMaxBatchFlushesEarly(t *testing.T) {
	tick := make(chan time.Time) // never fires: only the kick can flush
	srv := New(Config{Shards: 1, MaxBatch: 4, AdmitInterval: -1, batchTick: tick})
	defer srv.Close()
	sh := srv.shards[0]
	set := sh.set("", DefaultSet)

	before := sh.composedSnapshot().Ops
	chans := make([]<-chan bool, 4)
	for i := 0; i < 4; i++ {
		chans[i] = sh.b.submit(true, set, int64(i))
	}
	for i, ch := range chans {
		select {
		case changed := <-ch:
			if !changed {
				t.Errorf("put %d reported unchanged", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("put %d never resolved without a tick; the full batch should kick a flush", i)
		}
	}
	if pubs := sh.composedSnapshot().Ops - before; pubs != 1 {
		t.Fatalf("full batch took %d publications, want 1", pubs)
	}
}

// TestBatcherMixesPutsAndDels: one epoch can carry inserts and removes;
// order within the batch is submission order.
func TestBatcherMixesPutsAndDels(t *testing.T) {
	tick := make(chan time.Time)
	srv := New(Config{Shards: 1, AdmitInterval: -1, batchTick: tick})
	defer srv.Close()
	sh := srv.shards[0]
	set := sh.set("", DefaultSet)

	putCh := sh.b.submit(true, set, 5)
	delCh := sh.b.submit(false, set, 5)
	tick <- time.Time{}
	if !<-putCh {
		t.Fatal("put in mixed batch reported unchanged")
	}
	if !<-delCh {
		t.Fatal("del after put in the same batch should observe the key")
	}
	if sh.get(set, 5) {
		t.Fatal("key 5 still present after put+del batch")
	}
}
