package server

// The wire codec of the PTO service: one JSON envelope per operation,
// posted to /v1/op. A single envelope (rather than one route per verb)
// keeps the load generator, the conservation tests, and any future client
// on one decode path, and makes the op mix a data problem instead of a
// routing problem. Everything is stdlib encoding/json; values and keys are
// int64 to match the composition layer's key type.

// Op names accepted on the wire.
const (
	OpGet      = "get"
	OpPut      = "put"
	OpDel      = "del"
	OpEnqueue  = "enqueue"
	OpDequeue  = "dequeue"
	OpPush     = "push"
	OpPopMin   = "popmin"
	OpMove     = "move"
	OpMoveAll  = "moveall"
	OpTransfer = "transfer"
	OpMoveMin  = "movemin"
	OpMoveToPQ = "movetopq"
)

// Default structure names resolved when a request leaves the field empty.
// Every shard registers the same five structures under these names (see
// newShard), so requests address "the hot set on whatever shard owns this
// key" without knowing the shard layout.
const (
	DefaultSet   = "hot"  // put/get/del target, move source
	DefaultSpill = "cold" // move destination
	DefaultQueue = "ingress"
	DefaultPQ    = "sched"
)

// Request is the JSON envelope of POST /v1/op.
//
// Keyed ops (get/put/del/move/movetopq) route by Key; moveall groups Keys
// by owning shard and runs one batched publication per shard. Keyless ops
// (dequeue/popmin/transfer/movemin) rotate across shards unless Shard pins
// one. Put with Batch set rides the shard's epoch batcher: the reply
// arrives when the batch it joined commits. Put with Keys set is a
// multi-key put — all keys on their shard commit in one composed
// publication, the request-path analogue of MoveAll's amortization.
type Request struct {
	Op     string  `json:"op"`
	Struct string  `json:"struct,omitempty"` // target for single-structure ops
	Src    string  `json:"src,omitempty"`    // source for cross-structure ops
	Dst    string  `json:"dst,omitempty"`    // destination for cross-structure ops
	Key    int64   `json:"key,omitempty"`
	Keys   []int64 `json:"keys,omitempty"` // moveall / multi-key put
	Value  int64   `json:"value,omitempty"`
	N      int     `json:"n,omitempty"`     // transfer count
	Shard  *int    `json:"shard,omitempty"` // pin a keyless op to a shard
	Batch  bool    `json:"batch,omitempty"` // ride the epoch batcher (put/del)
}

// Response is the JSON reply of /v1/op. Err is set (with a non-200 status)
// when the request was rejected; the other fields are op-specific:
// Found/Value for reads and pops, Changed for put/del (did membership
// change), Moved for move/moveall/transfer/movemin/movetopq.
type Response struct {
	OK      bool   `json:"ok"`
	Found   bool   `json:"found,omitempty"`
	Changed bool   `json:"changed,omitempty"`
	Value   int64  `json:"value,omitempty"`
	Moved   int    `json:"moved,omitempty"`
	Shard   int    `json:"shard"`
	Batched bool   `json:"batched,omitempty"`
	Err     string `json:"error,omitempty"`
}

// TxnOp is one operation inside a POST /v1/txn body: the single-structure
// subset of the op envelope (get/put/del/enqueue/dequeue/push/popmin —
// cross-structure moves are already atomic via /v1/op). Assert, when set,
// is the expected boolean outcome (found for get/dequeue/popmin, changed
// for put/del): a mismatch aborts the whole transaction with 409 and
// nothing publishes. That makes compare-and-act protocols ("claim this key
// only if still absent, then enqueue it") one round trip.
type TxnOp struct {
	Op     string `json:"op"`
	Struct string `json:"struct,omitempty"`
	Key    int64  `json:"key,omitempty"`
	Value  int64  `json:"value,omitempty"`
	Assert *bool  `json:"assert,omitempty"`
}

// TxnRequest is the JSON envelope of POST /v1/txn: a declarative multi-op
// body executed as ONE open transaction (semantic validation + a single
// composed publication) on a single shard. Routing: Shard pins; otherwise
// the first keyed op's key picks the shard; an all-keyless body rotates.
type TxnRequest struct {
	Ops   []TxnOp `json:"ops"`
	Shard *int    `json:"shard,omitempty"`
}

// TxnOpResult is one op's outcome in the committed transaction.
type TxnOpResult struct {
	Found   bool  `json:"found,omitempty"`
	Changed bool  `json:"changed,omitempty"`
	Value   int64 `json:"value,omitempty"`
}

// TxnResponse is the JSON reply of /v1/txn. On commit (200) Results holds
// one entry per op in request order. An assert mismatch replies 409 with
// FailedOp set to the index of the op whose assertion failed; a restriction
// violation (e.g. a second structural dequeue on one queue) replies 400.
type TxnResponse struct {
	OK       bool          `json:"ok"`
	Shard    int           `json:"shard"`
	Results  []TxnOpResult `json:"results,omitempty"`
	FailedOp *int          `json:"failed_op,omitempty"`
	Err      string        `json:"error,omitempty"`
}

// mutates reports whether the op writes shard state — the class the
// admission layer sheds when a shard's live commit ratio is underwater.
// Reads stay admitted: they are cheap, validate-only, and keeping them
// flowing is what lets the shard's ratio recover while writes back off.
func mutates(op string) bool {
	switch op {
	case OpGet:
		return false
	default:
		return true
	}
}
