package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/semtx"
	"repro/internal/txn"
)

// assertErr aborts a /v1/txn body whose Assert clause disagreed with the
// observed outcome. It flows out of semtx.Manager.Run as the body's error
// — the subsystem guarantees an erroring body publishes nothing — and maps
// to 409: the client's precondition raced with another writer.
type assertErr struct {
	op   int
	want bool
	got  bool
}

func (e assertErr) Error() string {
	return fmt.Sprintf("op %d: asserted %v, observed %v", e.op, e.want, e.got)
}

// txnDefault resolves the default structure name of a txn op kind.
func txnDefault(op string) (string, bool) {
	switch op {
	case OpGet, OpPut, OpDel:
		return DefaultSet, true
	case OpEnqueue, OpDequeue:
		return DefaultQueue, true
	case OpPush, OpPopMin:
		return DefaultPQ, true
	default:
		return "", false
	}
}

// handleTxn decodes one declarative transaction, routes it to a single
// shard, and runs it as one open transaction: every op executes against
// the shard's structures with semantic footprint recording, and commit
// revalidates the footprint and publishes all buffered writes in one
// composed publication. Status mapping: 200 committed, 400 malformed body
// or restriction violation, 404 unknown structure, 409 assert mismatch,
// 429 shed by admission.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	reply := func(status int, resp TxnResponse) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	}
	fail := func(status int, format string, args ...any) {
		reply(status, TxnResponse{OK: false, Shard: -1, Err: fmt.Sprintf(format, args...)})
	}

	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req TxnRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		fail(http.StatusBadRequest, "empty transaction")
		return
	}
	if len(req.Ops) > s.cfg.MaxBatch {
		fail(http.StatusBadRequest, "transaction of %d ops exceeds max %d", len(req.Ops), s.cfg.MaxBatch)
		return
	}
	if req.Shard != nil && (*req.Shard < 0 || *req.Shard >= len(s.shards)) {
		fail(http.StatusBadRequest, "shard %d out of range [0,%d)", *req.Shard, len(s.shards))
		return
	}

	// Route the whole body to ONE shard: the subsystem's atomicity, like the
	// composed ops', is a single-domain property. Pin wins; else the first
	// keyed op's key decides; an all-keyless body rotates.
	var sh *shard
	switch {
	case req.Shard != nil:
		sh = s.shards[*req.Shard]
	default:
		for _, op := range req.Ops {
			if op.Op == OpGet || op.Op == OpPut || op.Op == OpDel {
				sh = s.shardFor(op.Key)
				break
			}
		}
		if sh == nil {
			sh = s.nextShard()
		}
	}

	// Pre-resolve every op's structure so name errors are clean HTTP errors,
	// not panics out of the transaction body.
	mutating := false
	for i, op := range req.Ops {
		def, ok := txnDefault(op.Op)
		if !ok {
			fail(http.StatusBadRequest, "op %d: unknown op %q", i, op.Op)
			return
		}
		var known bool
		switch def {
		case DefaultSet:
			known = sh.set(op.Struct, def) != nil
		case DefaultQueue:
			known = sh.queue(op.Struct, def) != nil
		default:
			known = sh.pq(op.Struct, def) != nil
		}
		if !known {
			resp, status := unknownStructure(sh, op.Struct)
			reply(status, TxnResponse{OK: false, Shard: resp.Shard, Err: resp.Err})
			return
		}
		if mutates(op.Op) {
			mutating = true
		}
	}
	if mutating && !admit(sh, OpPut) {
		resp, status := shedResponse(sh)
		reply(status, TxnResponse{OK: false, Shard: resp.Shard, Err: resp.Err})
		return
	}

	results := make([]TxnOpResult, 0, len(req.Ops))
	_, err := sh.sem.Run(func(tx *semtx.Tx[*txn.Ctx, int64]) error {
		results = results[:0] // the body may re-run after a semantic retry
		for i, op := range req.Ops {
			var res TxnOpResult
			var outcome bool
			name := op.Struct
			if name == "" {
				name, _ = txnDefault(op.Op)
			}
			switch op.Op {
			case OpGet:
				res.Found = tx.Get(name, op.Key)
				outcome = res.Found
			case OpPut:
				res.Changed = tx.Put(name, op.Key)
				outcome = res.Changed
			case OpDel:
				res.Changed = tx.Delete(name, op.Key)
				outcome = res.Changed
			case OpEnqueue:
				tx.Enqueue(name, op.Value)
			case OpDequeue:
				res.Value, res.Found = tx.Dequeue(name)
				outcome = res.Found
			case OpPush:
				tx.Push(name, op.Value)
			case OpPopMin:
				res.Value, res.Found = tx.PopMin(name)
				outcome = res.Found
			}
			if op.Assert != nil && *op.Assert != outcome {
				return assertErr{op: i, want: *op.Assert, got: outcome}
			}
			results = append(results, res)
		}
		return nil
	})
	if err != nil {
		var ae assertErr
		if errors.As(err, &ae) {
			idx := ae.op
			reply(http.StatusConflict, TxnResponse{
				OK: false, Shard: sh.id, FailedOp: &idx, Err: err.Error()})
			return
		}
		var v *semtx.Violation
		if errors.As(err, &v) {
			fail(http.StatusBadRequest, "restriction violation: %v", err)
			return
		}
		fail(http.StatusInternalServerError, "transaction failed: %v", err)
		return
	}
	reply(http.StatusOK, TxnResponse{OK: true, Shard: sh.id, Results: results})
}
