package server

import (
	"testing"
	"time"
)

// TestCloseDrainsPendingBatches: ops sitting in an epoch that never ticks
// are still committed and resolved by Close — the graceful-shutdown drain.
// Run under -race this also checks the batcher/admission goroutines exit
// cleanly (Close joins them; a leak would trip the final flush ordering).
func TestCloseDrainsPendingBatches(t *testing.T) {
	tick := make(chan time.Time) // never fires: only the drain can flush
	srv := New(Config{Shards: 2, AdmitInterval: -1, batchTick: tick})
	sh := srv.shards[0]
	set := sh.set("", DefaultSet)

	const k = 5
	chans := make([]<-chan bool, k)
	for i := 0; i < k; i++ {
		chans[i] = sh.b.submit(true, set, int64(i))
	}

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	for i, ch := range chans {
		select {
		case changed := <-ch:
			if !changed {
				t.Errorf("drained put %d reported unchanged", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("put %d never resolved; Close did not drain the pending epoch", i)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}

	// After the drain no further batched work is accepted; callers fall
	// back to the direct path.
	if ch := sh.b.submit(true, set, 99); ch != nil {
		t.Fatal("submit after Close returned a live channel")
	}
	srv.Close() // idempotent
}
