// Package server is the network front-end over the transactional
// composition layer: it exposes a registry of PTO-accelerated structures as
// a key-value + priority-scheduling HTTP service, sharded so that every
// later hot-path win in the substrate shows up as user-visible throughput.
//
// The architecture is N independent shards. Each shard owns its own
// htm.Domain (its own ownership-record stripe table, built with
// htm.NewDomainStripes), its own txn.Manager driven by its own
// speculate policy site, and its own registry of structures — so shards
// never share a conflict-detection table, never validate each other's
// footprints, and scale like separate instances of the paper's machine.
// Cross-structure composed operations (move, transfer, moveall) therefore
// stay within one shard: the composition layer's atomicity is a
// single-domain property (MultiCAS panics on cross-domain entry sets), and
// the router keeps that invariant by construction — a key's shard owns
// every structure the key can occupy.
//
// On top of each shard sit two server-side mechanisms borrowed from the
// exemplars named in the roadmap:
//
//   - an epoch batcher (batcher.go) in the style of Silo's group commit:
//     single-key writes arriving within an epoch window coalesce into one
//     composed publication, riding MoveAll's one-publication-per-k-keys
//     amortization on the request path;
//
//   - an admission layer (admission.go) keyed off the telemetry the
//     substrate already emits: when a shard's live speculation commit
//     ratio drops below a floor, the shard sheds mutating requests with
//     429 until the ratio recovers — backpressure from existing counters,
//     no new sensors.
package server

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/hashtable"
	"repro/internal/htm"
	"repro/internal/mound"
	"repro/internal/msqueue"
	"repro/internal/semtx"
	"repro/internal/skiplist"
	"repro/internal/telemetry"
	"repro/internal/tune"
	"repro/internal/txn"
)

// shard is one independently transactional slice of the service: its own
// domain, manager, structures, batcher, and admission state.
type shard struct {
	id    int
	m     *txn.Manager
	sem   *semtx.Manager[*txn.Ctx, int64] // open multi-op transactions (/v1/txn)
	b     *batcher
	tuner *tune.Controller    // the shard's self-tuning loop (set by Server.New)
	site  *telemetry.Site     // the shard's speculation counters ("shardN/txn")
	comp  *telemetry.Composed // the shard's composed-op counters (same name)
	open  *telemetry.Open     // the shard's open-transaction counters (same name)

	// Admission state (written by the controller, read by the handler).
	shedding  atomic.Bool
	sheds     atomic.Uint64 // mutating requests rejected with 429
	ratioBits atomic.Uint64 // last evaluated commit ratio, as float64 bits
}

// siteName returns the telemetry site name of shard id. One registry serves
// the whole server; per-shard names keep the shards distinguishable both
// for the admission controller and on the /metrics export.
func siteName(id int) string { return fmt.Sprintf("shard%d/txn", id) }

// newShard builds shard id under cfg, registering its telemetry in reg.
func newShard(id int, cfg Config, reg *telemetry.Registry) *shard {
	d := htm.NewDomainStripes(0, 0, cfg.Stripes)
	if cfg.ReadCap != 0 || cfg.WriteCap != 0 {
		// Negative values pass through: they force every composed operation
		// down the MultiCAS fallback (the ptostress -readcap/-writecap idiom).
		d.SetCapacity(cfg.ReadCap, cfg.WriteCap)
	}
	pol := cfg.Policy.WithMetrics(reg)
	m := txn.NewIn(d, cfg.Attempts).WithPolicyAt(pol, siteName(id))
	r := m.Structures()
	r.AddSet(DefaultSet, hashtable.NewPTOTableIn(d, 64, 0))
	r.AddSet(DefaultSpill, skiplist.NewPTOSetIn(d, 0))
	r.AddQueue(DefaultQueue, msqueue.NewPTOIn(d, 0))
	r.AddQueue("egress", msqueue.NewPTOIn(d, 0))
	r.AddPQ(DefaultPQ, mound.NewPTOIn(d, 12, 0))
	open := reg.Open(siteName(id))
	return &shard{
		id:   id,
		m:    m,
		sem:  semtx.New(m, r).WithTelemetry(open),
		site: reg.Site(siteName(id)),
		comp: reg.Composed(siteName(id)),
		open: open,
	}
}

// lastRatio returns the commit ratio the admission controller last
// evaluated for this shard (1 before the first evaluation: idle is healthy).
func (s *shard) lastRatio() float64 {
	if b := s.ratioBits.Load(); b != 0 {
		return math.Float64frombits(b)
	}
	return 1
}

func (s *shard) setRatio(r float64) { s.ratioBits.Store(math.Float64bits(r)) }

// set/queue/pq resolve a structure name on this shard, "" selecting the
// op's default. A nil return means the name is unknown (the handler's 404).
func (s *shard) set(name, def string) txn.Set {
	if name == "" {
		name = def
	}
	return s.m.Structures().Set(name)
}

func (s *shard) queue(name, def string) txn.Queue {
	if name == "" {
		name = def
	}
	return s.m.Structures().Queue(name)
}

func (s *shard) pq(name, def string) txn.PQ {
	if name == "" {
		name = def
	}
	return s.m.Structures().PQ(name)
}

// The per-op executors. Each is one composed operation on this shard's
// manager; the multi-key forms run the whole batch in a single atomic body
// — one prefix transaction or one MultiCAS publication for the lot.

func (s *shard) get(set txn.Set, key int64) bool {
	var found bool
	s.m.ReadOnly(func(c *txn.Ctx) { found = set.TxContains(c, key) })
	return found
}

func (s *shard) put(set txn.Set, key int64) bool {
	var changed bool
	s.m.Atomic(func(c *txn.Ctx) { changed = set.TxInsert(c, key) })
	return changed
}

func (s *shard) del(set txn.Set, key int64) bool {
	var changed bool
	s.m.Atomic(func(c *txn.Ctx) { changed = set.TxRemove(c, key) })
	return changed
}

// putAll inserts every key in one composed publication, returning how many
// were newly inserted.
func (s *shard) putAll(set txn.Set, keys []int64) int {
	var n int
	s.m.Atomic(func(c *txn.Ctx) {
		n = 0
		for _, k := range keys {
			if set.TxInsert(c, k) {
				n++
			}
		}
	})
	return n
}

func (s *shard) enqueue(q txn.Queue, v int64) {
	s.m.Atomic(func(c *txn.Ctx) { q.TxEnqueue(c, v) })
}

func (s *shard) dequeue(q txn.Queue) (int64, bool) {
	var v int64
	var ok bool
	s.m.Atomic(func(c *txn.Ctx) { v, ok = q.TxDequeue(c) })
	return v, ok
}

func (s *shard) push(pq txn.PQ, v int64) {
	s.m.Atomic(func(c *txn.Ctx) { pq.TxPush(c, v) })
}

func (s *shard) popMin(pq txn.PQ) (int64, bool) {
	var v int64
	var ok bool
	s.m.Atomic(func(c *txn.Ctx) { v, ok = pq.TxPopMin(c) })
	return v, ok
}

// Speculation-site probes used by the admission controller and stats.

func (s *shard) siteSnapshot() telemetry.SiteSnapshot { return s.site.Snapshot() }

func (s *shard) composedSnapshot() telemetry.ComposedSnapshot { return s.comp.Snapshot() }
