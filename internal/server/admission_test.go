package server

import (
	"net/http"
	"testing"
)

// TestAdmissionShedsAndRecovers pins the admission law deterministically:
// an interval whose live commit ratio is under the floor (with enough
// attempts to count as evidence) flips the shard into shedding — mutating
// requests 429, reads pass — and a following healthy (here: idle) interval
// re-admits. The interval counters are pumped directly into the shard's
// telemetry site; evaluate() is driven by the test, not a clock.
func TestAdmissionShedsAndRecovers(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1, AdmitFloor: 0.5, AdmitMinAttempts: 16})
	sh := srv.shards[0]

	// A degraded interval: 100 attempts, 10 commits — ratio 0.1 < 0.5.
	sh.site.Attempts.Add(100)
	sh.site.Commits.Add(10)
	srv.adm.evaluate()
	if !sh.shedding.Load() {
		t.Fatal("shard not shedding after a 0.1-ratio interval under floor 0.5")
	}
	if r := sh.lastRatio(); r > 0.2 {
		t.Fatalf("lastRatio = %v, want ~0.1", r)
	}

	shedsBefore := sh.sheds.Load()
	if resp, code := doOp(t, ts, Request{Op: OpPut, Key: 1}); code != http.StatusTooManyRequests || resp.OK {
		t.Fatalf("put while shedding: got %d ok=%v, want 429", code, resp.OK)
	}
	if resp, code := doOp(t, ts, Request{Op: OpMoveAll, Keys: []int64{1, 2, 3}}); code != http.StatusTooManyRequests || resp.OK {
		t.Fatalf("moveall while shedding: got %d ok=%v, want 429", code, resp.OK)
	}
	if _, code := doOp(t, ts, Request{Op: OpGet, Key: 1}); code != http.StatusOK {
		t.Fatalf("get while shedding: got %d, want 200 (reads stay admitted)", code)
	}
	if sh.sheds.Load() <= shedsBefore {
		t.Fatal("shed counter did not advance")
	}

	// Recovery: the rejected writes generated no attempts, so the next
	// interval is (near-)idle — ratio 1 — and the shard re-admits.
	srv.adm.evaluate()
	if sh.shedding.Load() {
		t.Fatal("shard still shedding after an idle interval")
	}
	if resp, code := doOp(t, ts, Request{Op: OpPut, Key: 1}); code != http.StatusOK || !resp.OK {
		t.Fatalf("put after recovery: got %d ok=%v, want 200", code, resp.OK)
	}
}

// TestAdmissionNeedsEvidence: a low-ratio interval with fewer than
// AdmitMinAttempts attempts never sheds — a shard that barely ran is not a
// shard in trouble.
func TestAdmissionNeedsEvidence(t *testing.T) {
	srv, _ := newTestServer(t, Config{Shards: 1, AdmitFloor: 0.5, AdmitMinAttempts: 64})
	sh := srv.shards[0]
	sh.site.Attempts.Add(10) // 10 < 64: below the evidence threshold
	srv.adm.evaluate()
	if sh.shedding.Load() {
		t.Fatal("shard shed on an interval below the evidence threshold")
	}
}
