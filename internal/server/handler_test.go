package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer starts a server (background admission off: tests that want
// shedding drive the evaluator directly) behind httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.AdmitInterval == 0 {
		cfg.AdmitInterval = -1
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doOp posts one envelope and decodes the reply.
func doOp(t *testing.T, ts *httptest.Server, req Request) (Response, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hr, err := http.Post(ts.URL+"/v1/op", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, hr.StatusCode
}

func TestHandlerRejectsMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	hr, err := http.Post(ts.URL+"/v1/op", "application/json", strings.NewReader(`{"op":`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: got %d, want 400", hr.StatusCode)
	}
}

func TestHandlerRejectsUnknownOp(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	resp, code := doOp(t, ts, Request{Op: "frobnicate"})
	if code != http.StatusBadRequest || resp.OK {
		t.Fatalf("unknown op: got %d ok=%v, want 400", code, resp.OK)
	}
}

func TestHandlerRejectsUnknownStructure(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	for _, req := range []Request{
		{Op: OpGet, Struct: "nope", Key: 1},
		{Op: OpPut, Struct: "nope", Key: 1},
		{Op: OpMove, Src: "nope", Key: 1},
		{Op: OpMove, Dst: "nope", Key: 1},
		{Op: OpEnqueue, Struct: "nope", Value: 1},
		{Op: OpPopMin, Struct: "nope"},
		{Op: OpMoveAll, Src: "nope", Keys: []int64{1, 2}},
	} {
		resp, code := doOp(t, ts, req)
		if code != http.StatusNotFound || resp.OK {
			t.Errorf("%s with unknown structure: got %d ok=%v, want 404", req.Op, code, resp.OK)
		}
		if !strings.Contains(resp.Err, "nope") {
			t.Errorf("%s error %q does not name the structure", req.Op, resp.Err)
		}
	}
}

func TestHandlerRejectsOversizedBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxBatch: 8})
	keys := make([]int64, 9)
	for i := range keys {
		keys[i] = int64(i)
	}
	for _, op := range []string{OpPut, OpMoveAll} {
		resp, code := doOp(t, ts, Request{Op: op, Keys: keys})
		if code != http.StatusBadRequest || resp.OK {
			t.Errorf("%s with 9 keys (max 8): got %d ok=%v, want 400", op, code, resp.OK)
		}
	}
	// At the limit it is accepted.
	if resp, code := doOp(t, ts, Request{Op: OpPut, Keys: keys[:8]}); code != http.StatusOK || !resp.OK {
		t.Fatalf("put of exactly MaxBatch keys: got %d ok=%v, want 200", code, resp.OK)
	}
}

func TestHandlerRejectsBadMethodAndShard(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	hr, err := http.Get(ts.URL + "/v1/op")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/op: got %d, want 405", hr.StatusCode)
	}
	bad := 99
	resp, code := doOp(t, ts, Request{Op: OpGet, Key: 1, Shard: &bad})
	if code != http.StatusBadRequest || resp.OK {
		t.Fatalf("out-of-range shard: got %d ok=%v, want 400", code, resp.OK)
	}
}

func TestHandlerKVRoundtrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 3})
	if resp, _ := doOp(t, ts, Request{Op: OpPut, Key: 7}); !resp.OK || !resp.Changed {
		t.Fatalf("put: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpPut, Key: 7}); resp.Changed {
		t.Fatalf("duplicate put reported changed: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpGet, Key: 7}); !resp.Found {
		t.Fatalf("get after put: %+v", resp)
	}
	// Batched single-key writes resolve when their epoch commits.
	if resp, _ := doOp(t, ts, Request{Op: OpPut, Key: 8, Batch: true}); !resp.Changed || !resp.Batched {
		t.Fatalf("batched put: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpDel, Key: 7}); !resp.Changed {
		t.Fatalf("del: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpGet, Key: 7}); resp.Found {
		t.Fatalf("get after del: %+v", resp)
	}
}

func TestHandlerCrossStructureOps(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 3})

	// move: hot -> cold, observable on the cold set of the same shard.
	doOp(t, ts, Request{Op: OpPut, Key: 11})
	if resp, _ := doOp(t, ts, Request{Op: OpMove, Key: 11}); resp.Moved != 1 {
		t.Fatalf("move: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpGet, Struct: DefaultSpill, Key: 11}); !resp.Found {
		t.Fatalf("key 11 not on cold after move")
	}

	// moveall: multi-key put then one batched publication per shard.
	keys := []int64{20, 21, 22, 23, 24}
	if resp, _ := doOp(t, ts, Request{Op: OpPut, Keys: keys}); resp.Moved != len(keys) {
		t.Fatalf("multi-key put: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpMoveAll, Keys: keys}); resp.Moved != len(keys) {
		t.Fatalf("moveall: %+v", resp)
	}
	for _, k := range keys {
		if resp, _ := doOp(t, ts, Request{Op: OpGet, Struct: DefaultSpill, Key: k}); !resp.Found {
			t.Fatalf("key %d not on cold after moveall", k)
		}
	}

	// Queue ops pinned to one shard so the rotation cannot split the pair.
	pin := 0
	doOp(t, ts, Request{Op: OpEnqueue, Value: 42, Shard: &pin})
	doOp(t, ts, Request{Op: OpEnqueue, Value: 43, Shard: &pin})
	if resp, _ := doOp(t, ts, Request{Op: OpTransfer, N: 2, Shard: &pin}); resp.Moved != 2 {
		t.Fatalf("transfer: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpDequeue, Struct: "egress", Shard: &pin}); !resp.Found || resp.Value != 42 {
		t.Fatalf("dequeue after transfer: %+v", resp)
	}

	// PQ ops: push two, popmin returns the smaller.
	doOp(t, ts, Request{Op: OpPush, Value: 9, Shard: &pin})
	doOp(t, ts, Request{Op: OpPush, Value: 4, Shard: &pin})
	if resp, _ := doOp(t, ts, Request{Op: OpPopMin, Shard: &pin}); !resp.Found || resp.Value != 4 {
		t.Fatalf("popmin: %+v", resp)
	}

	// movetopq then movemin round a key through the scheduler.
	putResp, _ := doOp(t, ts, Request{Op: OpPut, Key: 31})
	sh := putResp.Shard
	if resp, _ := doOp(t, ts, Request{Op: OpMoveToPQ, Key: 31, Shard: &sh}); resp.Moved != 1 {
		t.Fatalf("movetopq: %+v", resp)
	}
	if resp, _ := doOp(t, ts, Request{Op: OpMoveMin, Shard: &sh}); resp.Moved != 1 || resp.Value < 0 {
		t.Fatalf("movemin: %+v", resp)
	}
}

func TestHealthzAndStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hr)
	}
	hr.Body.Close()
	doOp(t, ts, Request{Op: OpPut, Key: 1})
	hr, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	defer hr.Body.Close()
	var st Stats
	if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	if len(st.Shards) != 2 || st.Publications == 0 {
		t.Fatalf("statz: %+v", st)
	}
}
