package server

import (
	"testing"
	"time"
)

// TestShardTunerWiring drives each shard's tune controller manually
// (TuneInterval < 0: constructed but not ticking) against a synthetic
// alias-heavy interval on the shard's own telemetry site, and checks the
// actuation lands in the shard's domain and surfaces through Stats.
func TestShardTunerWiring(t *testing.T) {
	s := New(Config{Shards: 2, Stripes: 64, TuneInterval: -1, AdmitInterval: -1})
	defer s.Close()
	sh := s.shards[0]
	if got := sh.m.Domain().Stripes(); got != 64 {
		t.Fatalf("provisioned stripes = %d, want 64", got)
	}
	// Alias-heavy interval on this shard's site only.
	sh.site.Attempts.Add(1000)
	sh.site.Commits.Add(850)
	sh.site.Conflicts.Add(100)
	sh.site.FalseConflicts.Add(100)
	if got := sh.tuner.Step(); got == 0 {
		t.Fatal("alias-heavy interval fired no actuation")
	}
	if got := sh.m.Domain().Stripes(); got != 128 {
		t.Fatalf("shard 0 stripes = %d after alias interval, want 128", got)
	}
	// Shard isolation: shard 1 saw no traffic and must be untouched.
	if got := s.shards[1].m.Domain().Stripes(); got != 64 {
		t.Fatalf("shard 1 stripes = %d, want untouched 64", got)
	}
	st := s.Stats()
	if st.TuneActions == 0 {
		t.Fatalf("stats = %+v: tune actions missing", st)
	}
	if st.Shards[0].Tune.Stripes != 128 || st.Shards[0].Tune.Actions == 0 {
		t.Fatalf("shard 0 tune stats = %+v", st.Shards[0].Tune)
	}
	if st.Shards[0].Tune.BatchK != DefaultMaxBatch {
		t.Fatalf("batch k = %d, want default %d", st.Shards[0].Tune.BatchK, DefaultMaxBatch)
	}
	if len(st.Shards[0].Tune.Budgets) == 0 {
		t.Fatal("budget snapshot missing from shard tune stats")
	}
}

// TestShardTunerBackground: with a real cadence, synthetic alias pressure
// is picked up without any manual stepping, and Close stops the loop.
func TestShardTunerBackground(t *testing.T) {
	s := New(Config{Shards: 1, Stripes: 64, TuneInterval: time.Millisecond, AdmitInterval: -1})
	defer s.Close()
	sh := s.shards[0]
	for i := 0; i < 2000; i++ {
		sh.site.Attempts.Add(100)
		sh.site.Commits.Add(85)
		sh.site.Conflicts.Add(10)
		sh.site.FalseConflicts.Add(10)
		if s.Stats().TuneActions > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background shard tuner never actuated")
}
