package server

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// admission is the backpressure controller: a periodic evaluator over the
// telemetry the speculation runtime already emits, with no sensors of its
// own. Every interval it deltas each shard's speculation site (the same
// counters the sampler logs and /metrics exports) and computes the shard's
// LIVE commit ratio — commits over attempts within the interval, not over
// the process lifetime, because a shard that degrades under a burst still
// shows a healthy cumulative ratio for minutes.
//
// The law: when an interval saw at least minAttempts attempts and its
// commit ratio is below floor, the shard sheds — mutating requests are
// rejected with 429 (reads pass) until a later interval clears it. Shedding
// is self-recovering by construction: rejected writes stop generating
// attempts, so the next interval is either idle (ratio 1 — an idle shard is
// healthy) or carried by read-mostly traffic that commits, and the shard
// re-admits. Under sustained overload this duty-cycles — admit, degrade,
// shed, recover — which is exactly the bounded-ingestion behavior a
// group-commit server wants, and the oscillation period is the evaluation
// interval, not a tuning constant buried in the hot path.
type admission struct {
	floor       float64
	minAttempts uint64
	shards      []*shard
	prev        []telemetry.SiteSnapshot

	ticker *time.Ticker
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
}

// newAdmission starts the controller over shards, evaluating every
// interval. A non-positive interval disables the background loop (tests
// drive evaluate directly; the handler still honors whatever shed state the
// test set).
func newAdmission(shards []*shard, floor float64, minAttempts int, interval time.Duration) *admission {
	a := &admission{
		floor:       floor,
		minAttempts: uint64(minAttempts),
		shards:      shards,
		prev:        make([]telemetry.SiteSnapshot, len(shards)),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for i, s := range shards {
		a.prev[i] = s.siteSnapshot()
	}
	if interval <= 0 {
		close(a.done)
		return a
	}
	a.ticker = time.NewTicker(interval)
	go func() {
		defer close(a.done)
		for {
			select {
			case <-a.stop:
				return
			case <-a.ticker.C:
				a.evaluate()
			}
		}
	}()
	return a
}

// evaluate runs one admission decision per shard from the interval's
// counter deltas. Exported to the package so tests pin the law without a
// clock.
func (a *admission) evaluate() {
	for i, s := range a.shards {
		cur := s.siteSnapshot()
		d := cur.Delta(a.prev[i])
		a.prev[i] = cur
		ratio := d.CommitRatio() // 1 when the interval was idle
		s.setRatio(ratio)
		s.shedding.Store(d.Attempts >= a.minAttempts && ratio < a.floor)
	}
}

// close stops the evaluator and waits for it. Safe to call more than once.
func (a *admission) close() {
	a.once.Do(func() {
		if a.ticker != nil {
			a.ticker.Stop()
		}
		close(a.stop)
	})
	<-a.done
}
