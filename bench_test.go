// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (one testing.B benchmark per figure), printing the
// measured series as benchmark logs and reporting the paper's metric —
// operations per simulated millisecond at 8 threads — as a custom unit.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The same runners are available interactively via cmd/ptobench. The
// simulated machine is deterministic, so b.N iterations all produce the
// same figure; one iteration is meaningful and additional ones only verify
// stability.
package repro

import (
	"testing"

	"repro/internal/bench"
)

// benchScale shrinks the measurement window for testing.B runs; cmd/ptobench
// -scale 1.0 produces the full-length numbers recorded in EXPERIMENTS.md.
const benchScale = 0.25

func runFigure(b *testing.B, f func(float64) bench.Figure) {
	b.ReportAllocs()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = f(benchScale)
	}
	b.StopTimer()
	b.Log("\n" + bench.Render(fig))
	last := fig.Series[0].Points[len(fig.Series[0].Points)-1]
	b.ReportMetric(last.Throughput, "ops/simms@8t")
}

func BenchmarkFig2aMindicator(b *testing.B) {
	runFigure(b, bench.Fig2a)
}

func BenchmarkFig2bPriorityQueues(b *testing.B) {
	runFigure(b, bench.Fig2b)
}

func BenchmarkFig3aSetBenchWriteOnly(b *testing.B) {
	runFigure(b, func(s float64) bench.Figure { return bench.Fig3(0, s) })
}

func BenchmarkFig3bSetBenchMixed(b *testing.B) {
	runFigure(b, func(s float64) bench.Figure { return bench.Fig3(34, s) })
}

func BenchmarkFig3cSetBenchReadOnly(b *testing.B) {
	runFigure(b, func(s float64) bench.Figure { return bench.Fig3(100, s) })
}

func BenchmarkFig4aHashWriteOnly(b *testing.B) {
	runFigure(b, func(s float64) bench.Figure { return bench.Fig4(0, s) })
}

func BenchmarkFig4bHashMixed(b *testing.B) {
	runFigure(b, func(s float64) bench.Figure { return bench.Fig4(80, s) })
}

func BenchmarkFig4cHashReadOnly(b *testing.B) {
	runFigure(b, func(s float64) bench.Figure { return bench.Fig4(100, s) })
}

func BenchmarkFig5aBSTComposition(b *testing.B) {
	runFigure(b, bench.Fig5a)
}

func BenchmarkFig5bMoundFences(b *testing.B) {
	runFigure(b, bench.Fig5b)
}

func BenchmarkFig5cBSTFences(b *testing.B) {
	runFigure(b, bench.Fig5c)
}
